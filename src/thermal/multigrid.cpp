#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "circuit/dense_lu.hpp"
#include "circuit/sparse.hpp"
#include "core/instrument.hpp"
#include "core/parallel.hpp"
#include "thermal/solver.hpp"

/// \file multigrid.cpp
/// Geometric multigrid for the steady-state conduction problem. The solve
/// runs in excess temperature theta = T - ambient, which makes every
/// convective film a homogeneous boundary (the film conductance lands on
/// the diagonal, the ambient source term vanishes) -- exactly what the
/// coarse-grid error equation A e = r needs, since errors have no ambient
/// offset.
///
/// Coarsening is lateral only (2x2 cell agglomeration per z-layer): the
/// z-stack is a handful of strongly-coupled thin layers, the textbook
/// semi-coarsening configuration -- keep the strong direction fine, coarsen
/// the weak ones, and smooth with z-lines (each vertical column solved
/// exactly by the Thomas algorithm, red-black over the lateral parity).
/// Coarse operators are built from the fine CONDUCTANCES, not from averaged
/// conductivities: a coarse lateral link is the parallel sum, over the fine
/// rows crossing the coarse interface, of the series path
/// half-internal-link / crossing-link / half-internal-link, and coarse
/// z-links and boundary-film conductances are plain sums over the 2x2
/// aggregate. This resistor-network renormalization is what keeps the
/// V-cycle rate mesh-independent here: the stack mixes copper, silicon and
/// glass with ~100x conductivity contrast, and a rediscretized operator on
/// arithmetically averaged k overestimates lateral coupling across material
/// interfaces so badly that the coarse-grid correction stalls (measured
/// ~0.8/cycle at 96x96 vs ~0.2 with conductance coarsening).
/// Restriction sums the four fine residuals into their coarse parent (full
/// weighting in the finite-volume sense: watts add), and prolongation is
/// cell-centered bilinear with clamped edges. Smoother columns of one color
/// only read frozen opposite-color neighbors, so every level is parallel
/// over mesh rows with byte-identical results at any thread count.

namespace gia::thermal {

namespace instrument = core::instrument;

namespace {

/// Series conductance [W/K] between two voxel centers through half-cells of
/// conductivity ka, kb with face area `area` and center distances da, db
/// (all SI). Mirrors solver.cpp so both discretizations agree exactly.
double series_g(double ka, double kb, double area, double da, double db) {
  const double ra = da / (ka * area);
  const double rb = db / (kb * area);
  return 1.0 / (ra + rb);
}

/// One multigrid level: geometry, per-cell conductivity, the assembled
/// 7-point operator (link conductances + diagonal incl. films), and the
/// solve vectors. Cells index as (z * ny + y) * nx + x.
struct Level {
  int nx = 0, ny = 0, nz = 0;
  double w = 0, h = 0;          ///< lateral cell sizes [m] (fine level only)
  std::vector<double> dz;       ///< per-layer thickness [m]
  std::vector<double> k;        ///< conductivity per cell (fine level only)
  std::vector<double> gx;       ///< link (x,y,z)-(x+1,y,z); valid for x < nx-1
  std::vector<double> gy;       ///< link to y+1; valid for y < ny-1
  std::vector<double> gz;       ///< link to z+1; valid for z < nz-1
  std::vector<double> film;     ///< boundary film conductance per cell
  std::vector<double> diag;     ///< sum of links + boundary films
  std::vector<double> rhs;      ///< power [W] (fine) / restricted residual
  std::vector<double> u;        ///< theta [K]
  std::vector<double> res;      ///< residual scratch
  std::vector<double> row_scratch;  ///< per-(z,y)-row reduction slots

  std::size_t idx(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * ny + y) * nx + x;
  }
  std::size_t cells() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }
};

void alloc_solve_arrays(Level& L) {
  const std::size_t n = L.cells();
  L.gx.assign(n, 0.0);
  L.gy.assign(n, 0.0);
  L.gz.assign(n, 0.0);
  L.film.assign(n, 0.0);
  L.diag.assign(n, 0.0);
  L.u.assign(n, 0.0);
  L.res.assign(n, 0.0);
  L.row_scratch.assign(static_cast<std::size_t>(L.nz) * L.ny, 0.0);
}

/// diag = sum of incident link conductances + the cell's boundary films.
void build_diag(Level& L) {
  const std::size_t plane = static_cast<std::size_t>(L.nx) * L.ny;
  for (int z = 0; z < L.nz; ++z) {
    for (int y = 0; y < L.ny; ++y) {
      for (int x = 0; x < L.nx; ++x) {
        const std::size_t i = L.idx(x, y, z);
        double d = L.film[i];
        if (x + 1 < L.nx) d += L.gx[i];
        if (x > 0) d += L.gx[i - 1];
        if (y + 1 < L.ny) d += L.gy[i];
        if (y > 0) d += L.gy[i - static_cast<std::size_t>(L.nx)];
        if (z + 1 < L.nz) d += L.gz[i];
        if (z > 0) d += L.gz[i - plane];
        L.diag[i] = d;
      }
    }
  }
}

/// Assemble the finest-level operator from the mesh geometry and per-cell
/// conductivities.
void assemble_fine(Level& L, const ThermalMesh& mesh) {
  alloc_solve_arrays(L);
  for (int z = 0; z < L.nz; ++z) {
    const double a_x = L.h * L.dz[static_cast<std::size_t>(z)];
    const double a_y = L.w * L.dz[static_cast<std::size_t>(z)];
    const double a_z = L.w * L.h;
    for (int y = 0; y < L.ny; ++y) {
      for (int x = 0; x < L.nx; ++x) {
        const std::size_t i = L.idx(x, y, z);
        const double k_c = L.k[i];
        if (x + 1 < L.nx) {
          L.gx[i] = series_g(k_c, L.k[L.idx(x + 1, y, z)], a_x, L.w / 2, L.w / 2);
        }
        if (y + 1 < L.ny) {
          L.gy[i] = series_g(k_c, L.k[L.idx(x, y + 1, z)], a_y, L.h / 2, L.h / 2);
        }
        if (z + 1 < L.nz) {
          L.gz[i] = series_g(k_c, L.k[L.idx(x, y, z + 1)], a_z,
                             L.dz[static_cast<std::size_t>(z)] / 2,
                             L.dz[static_cast<std::size_t>(z + 1)] / 2);
        }
        // Boundary films: side convection at the lateral rim, top/bottom
        // films on the outer layers (half-cell conduction in series with
        // the film), exactly as the SOR stencil.
        double f = 0.0;
        if (x == 0) f += 1.0 / (L.w / 2 / (k_c * a_x) + 1.0 / (mesh.h_side * a_x));
        if (x + 1 == L.nx) f += 1.0 / (L.w / 2 / (k_c * a_x) + 1.0 / (mesh.h_side * a_x));
        if (y == 0) f += 1.0 / (L.h / 2 / (k_c * a_y) + 1.0 / (mesh.h_side * a_y));
        if (y + 1 == L.ny) f += 1.0 / (L.h / 2 / (k_c * a_y) + 1.0 / (mesh.h_side * a_y));
        if (z + 1 == L.nz) {
          f += 1.0 / (L.dz[static_cast<std::size_t>(z)] / 2 / (k_c * a_z) +
                      1.0 / (mesh.h_top * a_z));
        }
        if (z == 0) {
          f += 1.0 / (L.dz[0] / 2 / (k_c * a_z) + 1.0 / (mesh.h_bottom * a_z));
        }
        L.film[i] = f;
      }
    }
  }
  build_diag(L);
}

/// Coarsen the OPERATOR, not the material map: every coarse conductance is
/// a series/parallel reduction of fine conductances, so material interfaces
/// keep their fine-grid bottlenecks (harmonic behaviour) no matter where
/// they land relative to the coarse grid.
///  * lateral link: half the sum of the fine links crossing the coarse
///    interface -- the crossing links already hold the harmonic (series)
///    combination of the two material half-cells at the interface, and the
///    1/2 accounts for the doubled centre distance. For uniform k this is
///    exactly the rediscretized value; for jumps it errs on the stiff side
///    (it drops the aggregate-internal resistance), which UNDERcorrects --
///    the stable direction. Adding that internal resistance in series was
///    tried and over-softens the coarse operator enough that the
///    correction overshoots and the cycle diverges.
///  * z link and boundary film: the four fine values add (areas add).
void coarsen_operator(const Level& f, Level& c) {
  alloc_solve_arrays(c);
  for (int z = 0; z < c.nz; ++z) {
    for (int y = 0; y < c.ny; ++y) {
      for (int x = 0; x < c.nx; ++x) {
        const std::size_t i = c.idx(x, y, z);
        if (x + 1 < c.nx) {
          c.gx[i] = 0.5 * (f.gx[f.idx(2 * x + 1, 2 * y, z)] + f.gx[f.idx(2 * x + 1, 2 * y + 1, z)]);
        }
        if (y + 1 < c.ny) {
          c.gy[i] = 0.5 * (f.gy[f.idx(2 * x, 2 * y + 1, z)] + f.gy[f.idx(2 * x + 1, 2 * y + 1, z)]);
        }
        if (z + 1 < c.nz) {
          c.gz[i] = f.gz[f.idx(2 * x, 2 * y, z)] + f.gz[f.idx(2 * x + 1, 2 * y, z)] +
                    f.gz[f.idx(2 * x, 2 * y + 1, z)] + f.gz[f.idx(2 * x + 1, 2 * y + 1, z)];
        }
        c.film[i] = f.film[f.idx(2 * x, 2 * y, z)] + f.film[f.idx(2 * x + 1, 2 * y, z)] +
                    f.film[f.idx(2 * x, 2 * y + 1, z)] + f.film[f.idx(2 * x + 1, 2 * y + 1, z)];
      }
    }
  }
  build_diag(c);
}

/// One red-black z-line Gauss-Seidel sweep (both colors). The z-stack is a
/// handful of thin, strongly-coupled layers -- the stiff direction that a
/// point smoother relaxes poorly and that lateral semicoarsening leaves
/// uncoarsened -- so each vertical column is solved exactly (Thomas) with
/// its lateral neighbors frozen. Columns are colored by (x + y) parity:
/// every lateral neighbor is the opposite color, so the row-parallel sweep
/// is byte-identical at any thread count.
void smooth(Level& L) {
  const std::size_t plane = static_cast<std::size_t>(L.nx) * L.ny;
  for (int color = 0; color < 2; ++color) {
    core::parallel_for(static_cast<std::size_t>(L.ny), [&L, color, plane](std::size_t yy) {
      const int y = static_cast<int>(yy);
      // Thomas scratch: modified upper diagonal and rhs per column.
      std::vector<double> cp(static_cast<std::size_t>(L.nz));
      std::vector<double> dp(static_cast<std::size_t>(L.nz));
      for (int x = (color + y) & 1; x < L.nx; x += 2) {
        // Column rhs: power/restricted residual + frozen lateral inflow.
        for (int z = 0; z < L.nz; ++z) {
          const std::size_t i = L.idx(x, y, z);
          double acc = L.rhs[i];
          if (x + 1 < L.nx) acc += L.gx[i] * L.u[i + 1];
          if (x > 0) acc += L.gx[i - 1] * L.u[i - 1];
          if (y + 1 < L.ny) acc += L.gy[i] * L.u[i + static_cast<std::size_t>(L.nx)];
          if (y > 0) acc += L.gy[i - static_cast<std::size_t>(L.nx)] * L.u[i - static_cast<std::size_t>(L.nx)];
          dp[static_cast<std::size_t>(z)] = acc;
        }
        // Tridiagonal solve over z: diag on the main diagonal, -gz off it.
        {
          const std::size_t i0 = L.idx(x, y, 0);
          const double inv = 1.0 / L.diag[i0];
          cp[0] = (L.nz > 1 ? -L.gz[i0] : 0.0) * inv;
          dp[0] *= inv;
        }
        for (int z = 1; z < L.nz; ++z) {
          const std::size_t i = L.idx(x, y, z);
          const double lower = -L.gz[i - plane];
          const double inv = 1.0 / (L.diag[i] - lower * cp[static_cast<std::size_t>(z - 1)]);
          cp[static_cast<std::size_t>(z)] = (z + 1 < L.nz ? -L.gz[i] : 0.0) * inv;
          dp[static_cast<std::size_t>(z)] =
              (dp[static_cast<std::size_t>(z)] - lower * dp[static_cast<std::size_t>(z - 1)]) * inv;
        }
        L.u[L.idx(x, y, L.nz - 1)] = dp[static_cast<std::size_t>(L.nz - 1)];
        for (int z = L.nz - 2; z >= 0; --z) {
          L.u[L.idx(x, y, z)] = dp[static_cast<std::size_t>(z)] -
                                cp[static_cast<std::size_t>(z)] * L.u[L.idx(x, y, z + 1)];
        }
      }
    });
  }
}

/// res = rhs - A u.
void residual(Level& L) {
  const std::size_t n_rows = static_cast<std::size_t>(L.nz) * L.ny;
  core::parallel_for(n_rows, [&L](std::size_t r) {
    const int z = static_cast<int>(r) / L.ny;
    const int y = static_cast<int>(r) % L.ny;
    const std::size_t plane = static_cast<std::size_t>(L.nx) * L.ny;
    for (int x = 0; x < L.nx; ++x) {
      const std::size_t i = L.idx(x, y, z);
      double acc = L.diag[i] * L.u[i];
      if (x + 1 < L.nx) acc -= L.gx[i] * L.u[i + 1];
      if (x > 0) acc -= L.gx[i - 1] * L.u[i - 1];
      if (y + 1 < L.ny) acc -= L.gy[i] * L.u[i + static_cast<std::size_t>(L.nx)];
      if (y > 0) acc -= L.gy[i - static_cast<std::size_t>(L.nx)] * L.u[i - static_cast<std::size_t>(L.nx)];
      if (z + 1 < L.nz) acc -= L.gz[i] * L.u[i + plane];
      if (z > 0) acc -= L.gz[i - plane] * L.u[i - plane];
      L.res[i] = L.rhs[i] - acc;
    }
  });
}

/// Full-weighting restriction (finite-volume): each coarse cell's RHS is
/// the sum of its four fine children's residuals -- watts add under
/// agglomeration.
void restrict_residual(const Level& fine, Level& coarse) {
  const std::size_t n_rows = static_cast<std::size_t>(coarse.nz) * coarse.ny;
  core::parallel_for(n_rows, [&](std::size_t r) {
    const int z = static_cast<int>(r) / coarse.ny;
    const int y = static_cast<int>(r) % coarse.ny;
    for (int x = 0; x < coarse.nx; ++x) {
      coarse.rhs[coarse.idx(x, y, z)] =
          fine.res[fine.idx(2 * x, 2 * y, z)] + fine.res[fine.idx(2 * x + 1, 2 * y, z)] +
          fine.res[fine.idx(2 * x, 2 * y + 1, z)] + fine.res[fine.idx(2 * x + 1, 2 * y + 1, z)];
    }
  });
}

/// Cell-centered bilinear prolongation with clamped edges: a fine cell sits
/// a quarter-cell off its coarse parent's center, giving 9/16-3/16-3/16-1/16
/// weights toward the parent and the two/three nearest coarse neighbors.
void prolong_add(const Level& coarse, Level& fine) {
  const std::size_t n_rows = static_cast<std::size_t>(fine.nz) * fine.ny;
  core::parallel_for(n_rows, [&](std::size_t r) {
    const int z = static_cast<int>(r) / fine.ny;
    const int y = static_cast<int>(r) % fine.ny;
    const int cy = y >> 1;
    const int sy = (y & 1) ? 1 : -1;
    const int cy2 = std::clamp(cy + sy, 0, coarse.ny - 1);
    for (int x = 0; x < fine.nx; ++x) {
      const int cx = x >> 1;
      const int sx = (x & 1) ? 1 : -1;
      const int cx2 = std::clamp(cx + sx, 0, coarse.nx - 1);
      const double e =
          (9.0 * coarse.u[coarse.idx(cx, cy, z)] + 3.0 * coarse.u[coarse.idx(cx2, cy, z)] +
           3.0 * coarse.u[coarse.idx(cx, cy2, z)] + 1.0 * coarse.u[coarse.idx(cx2, cy2, z)]) /
          16.0;
      fine.u[fine.idx(x, y, z)] += e;
    }
  });
}

/// Exact solver for the coarsest level. The coarsest level must be solved
/// EXACTLY: the convective films are weak (tens of W/(m^2 K) on top and
/// sides), so the operator carries a near-singular quasi-constant mode that
/// smoothing barely touches at any level -- an iterative coarse "sweep
/// block" leaves a slow ~0.85/cycle tail, while an exact solve restores
/// the mesh-independent multigrid rate. Small levels get a dense LU
/// factored once; levels a stopped (odd-extent) coarsening left large get
/// tightly-converged Jacobi-CG, which handles the near-null mode where
/// stationary smoothing cannot.
class CoarseSolver {
 public:
  explicit CoarseSolver(const Level& L) {
    const int n = static_cast<int>(L.cells());
    if (n <= kDirectMaxCells) {
      circuit::DenseMatrix<double> A(n);
      for_each_link(L, [&](int i, int j, double g) {
        A.at(i, j) = -g;
        A.at(j, i) = -g;
      });
      for (std::size_t i = 0; i < L.cells(); ++i) {
        A.at(static_cast<int>(i), static_cast<int>(i)) = L.diag[i];
      }
      lu_.emplace(std::move(A));
    } else {
      circuit::RealSparseMatrix A(n);
      for (std::size_t i = 0; i < L.cells(); ++i) {
        A.add(static_cast<int>(i), static_cast<int>(i), L.diag[i]);
      }
      for_each_link(L, [&](int i, int j, double g) {
        A.add(i, j, -g);
        A.add(j, i, -g);
      });
      A.finalize();
      sp_.emplace(std::move(A));
      jacobi_.emplace(sp_->view());
    }
  }

  void solve(const std::vector<double>& rhs, std::vector<double>& u) const {
    if (lu_) {
      u = lu_->solve(rhs);
      return;
    }
    std::fill(u.begin(), u.end(), 0.0);
    circuit::KrylovOptions ko;
    ko.tol_rel = 1e-13;
    ko.max_iters = 40 * sp_->size();
    (void)circuit::cg(sp_->view(), rhs, u, *jacobi_, ko);
  }

 private:
  static constexpr int kDirectMaxCells = 1500;

  template <typename F>
  static void for_each_link(const Level& L, const F& f) {
    const std::size_t plane = static_cast<std::size_t>(L.nx) * L.ny;
    for (int z = 0; z < L.nz; ++z) {
      for (int y = 0; y < L.ny; ++y) {
        for (int x = 0; x < L.nx; ++x) {
          const std::size_t i = L.idx(x, y, z);
          const int ii = static_cast<int>(i);
          if (x + 1 < L.nx) f(ii, ii + 1, L.gx[i]);
          if (y + 1 < L.ny) f(ii, ii + L.nx, L.gy[i]);
          if (z + 1 < L.nz) f(ii, ii + static_cast<int>(plane), L.gz[i]);
        }
      }
    }
  }

  std::optional<circuit::LuFactor<double>> lu_;
  std::optional<circuit::RealSparseMatrix> sp_;
  std::optional<circuit::JacobiPreconditioner<double>> jacobi_;
};

void vcycle(std::vector<Level>& levels, std::size_t l, const CoarseSolver& coarse,
            const SolverOptions& opts) {
  Level& L = levels[l];
  if (l + 1 == levels.size()) {
    coarse.solve(L.rhs, L.u);
    return;
  }
  for (int s = 0; s < opts.mg_pre_smooth; ++s) smooth(L);
  residual(L);
  restrict_residual(L, levels[l + 1]);
  std::fill(levels[l + 1].u.begin(), levels[l + 1].u.end(), 0.0);
  vcycle(levels, l + 1, coarse, opts);
  prolong_add(levels[l + 1], L);
  for (int s = 0; s < opts.mg_post_smooth; ++s) smooth(L);
}

}  // namespace

ThermalField solve_steady_state_multigrid(const ThermalMesh& mesh, const SolverOptions& opts) {
  const int nx = mesh.nx, ny = mesh.ny;
  const int nz = static_cast<int>(mesh.layers.size());
  if (nx < 1 || ny < 1 || nz < 1) throw std::invalid_argument("empty mesh");

  // --- Build the level hierarchy: lateral 2x coarsening while both extents
  // stay even and above the floor.
  std::vector<Level> levels;
  {
    Level fine;
    fine.nx = nx;
    fine.ny = ny;
    fine.nz = nz;
    fine.w = mesh.cell_w_um * 1e-6;
    fine.h = mesh.cell_h_um * 1e-6;
    fine.dz.resize(static_cast<std::size_t>(nz));
    for (int z = 0; z < nz; ++z) {
      fine.dz[static_cast<std::size_t>(z)] = mesh.layers[static_cast<std::size_t>(z)].thickness_um * 1e-6;
    }
    fine.k.resize(fine.cells());
    fine.rhs.resize(fine.cells());
    for (int z = 0; z < nz; ++z) {
      const auto& layer = mesh.layers[static_cast<std::size_t>(z)];
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          fine.k[fine.idx(x, y, z)] = layer.k.at(x, y);
          fine.rhs[fine.idx(x, y, z)] = layer.power.at(x, y);
        }
      }
    }
    levels.push_back(std::move(fine));
  }
  while (levels.back().nx % 2 == 0 && levels.back().ny % 2 == 0 &&
         levels.back().nx / 2 >= opts.mg_min_extent && levels.back().ny / 2 >= opts.mg_min_extent) {
    const Level& f = levels.back();
    Level c;
    c.nx = f.nx / 2;
    c.ny = f.ny / 2;
    c.nz = f.nz;
    c.dz = f.dz;
    c.rhs.assign(c.cells(), 0.0);
    levels.push_back(std::move(c));
  }

  // Too small to coarsen even once: SOR is the better solver there.
  if (levels.size() < 2) return solve_steady_state_sor(mesh, opts);

  GIA_SPAN("thermal/steady_state_mg");
  assemble_fine(levels.front(), mesh);
  for (std::size_t l = 1; l < levels.size(); ++l) coarsen_operator(levels[l - 1], levels[l]);
  const CoarseSolver coarse(levels.back());

  // --- V-cycle to tolerance: converged when the largest fine-grid update
  // of a whole cycle drops below tol_k (one V-cycle contracts the error by
  // a mesh-independent factor, so the last update tracks the error scale).
  Level& fine = levels.front();
  std::vector<double> u_prev(fine.cells());
  const std::size_t n_rows = static_cast<std::size_t>(fine.nz) * fine.ny;
  // ~40 V-cycles of work equals a few hundred SOR sweeps worst case; the
  // sweep-count cap translates conservatively.
  const int max_vcycles = std::max(1, opts.max_iters / 100);

  ThermalField field;
  field.nx = nx;
  field.ny = ny;
  for (int cycle = 0; cycle < max_vcycles; ++cycle) {
    u_prev = fine.u;
    vcycle(levels, 0, coarse, opts);
    std::fill(fine.row_scratch.begin(), fine.row_scratch.end(), 0.0);
    core::parallel_for(n_rows, [&](std::size_t r) {
      const std::size_t base = r * static_cast<std::size_t>(fine.nx);
      double m = 0;
      for (int x = 0; x < fine.nx; ++x) {
        m = std::max(m, std::abs(fine.u[base + x] - u_prev[base + x]));
      }
      fine.row_scratch[r] = m;
    });
    double max_du = 0;
    for (double v : fine.row_scratch) max_du = std::max(max_du, v);
    field.iterations = cycle + 1;
    if (max_du < opts.tol_k) {
      field.converged = true;
      break;
    }
  }

  field.t_c.assign(static_cast<std::size_t>(nz), geometry::Grid<double>(nx, ny, mesh.ambient_c));
  for (int z = 0; z < nz; ++z) {
    auto& t = field.t_c[static_cast<std::size_t>(z)];
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        t.at(x, y) = mesh.ambient_c + fine.u[fine.idx(x, y, z)];
      }
    }
  }
  for (const auto& layer : field.t_c) {
    for (double v : layer.data()) field.max_c = std::max(field.max_c, v);
  }
  instrument::counter_add(instrument::Counter::MgVcycles,
                          static_cast<std::uint64_t>(field.iterations));
  if (instrument::enabled()) {
    instrument::gauge_set("thermal.steady.max_c", field.max_c);
    instrument::gauge_set("thermal.steady.converged", field.converged ? 1.0 : 0.0);
  }
  return field;
}

}  // namespace gia::thermal
