#include "thermal/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/instrument.hpp"
#include "core/parallel.hpp"
#include "core/solver_backend.hpp"

namespace gia::thermal {

namespace instrument = core::instrument;

namespace {

/// Series conductance [W/K] between two voxel centers through half-cells of
/// conductivity ka, kb with face area `area` and center distances da, db
/// (all SI).
double series_g(double ka, double kb, double area, double da, double db) {
  const double ra = da / (ka * area);
  const double rb = db / (kb * area);
  return 1.0 / (ra + rb);
}

}  // namespace

ThermalField solve_steady_state(const ThermalMesh& mesh, const SolverOptions& opts) {
  bool mg = false;
  switch (opts.method) {
    case SolverOptions::Method::Sor: mg = false; break;
    case SolverOptions::Method::Multigrid: mg = true; break;
    case SolverOptions::Method::Auto:
      mg = core::use_multigrid(mesh.nx, mesh.ny);
      break;
  }
  if (instrument::enabled()) {
    instrument::gauge_set("solver_backend.thermal_steady", mg ? 1.0 : 0.0);
  }
  // solve_steady_state_multigrid itself falls back to SOR when the mesh
  // cannot coarsen (odd extents or below the floor).
  return mg ? solve_steady_state_multigrid(mesh, opts) : solve_steady_state_sor(mesh, opts);
}

ThermalField solve_steady_state_sor(const ThermalMesh& mesh, const SolverOptions& opts) {
  GIA_SPAN("thermal/steady_state");
  const int nx = mesh.nx, ny = mesh.ny;
  const int nz = static_cast<int>(mesh.layers.size());
  if (nx < 1 || ny < 1 || nz < 1) throw std::invalid_argument("empty mesh");

  const double w = mesh.cell_w_um * 1e-6;
  const double h = mesh.cell_h_um * 1e-6;
  std::vector<double> dz(static_cast<std::size_t>(nz));
  for (int z = 0; z < nz; ++z) dz[static_cast<std::size_t>(z)] = mesh.layers[static_cast<std::size_t>(z)].thickness_um * 1e-6;

  ThermalField field;
  field.nx = nx;
  field.ny = ny;
  field.t_c.assign(static_cast<std::size_t>(nz), geometry::Grid<double>(nx, ny, mesh.ambient_c));

  auto k_at = [&](int z, int x, int y) { return mesh.layers[static_cast<std::size_t>(z)].k.at(x, y); };

  // Red-black SOR: cells are colored by (x + y + z) parity, so the 7-point
  // stencil of any cell only reads the opposite color. Each color sweep is
  // then embarrassingly parallel over (z, y) rows with byte-identical
  // results at any thread count -- within a sweep every update reads state
  // frozen by the previous sweep, regardless of execution order.
  const std::size_t n_rows = static_cast<std::size_t>(nz) * static_cast<std::size_t>(ny);
  std::vector<double> row_max_dt(n_rows);

  auto sweep_row_color = [&](std::size_t r, int color) {
    const int z = static_cast<int>(r) / ny;
    const int y = static_cast<int>(r) % ny;
    auto& t = field.t_c[static_cast<std::size_t>(z)];
    const auto& layer = mesh.layers[static_cast<std::size_t>(z)];
    double local_max = row_max_dt[r];
    for (int x = (color + y + z) & 1; x < nx; x += 2) {
      const double k_c = k_at(z, x, y);
      double g_sum = 0, rhs = layer.power.at(x, y);

      // Lateral neighbors (or side convection at the rim).
      const double a_x = h * dz[static_cast<std::size_t>(z)];
      const double a_y = w * dz[static_cast<std::size_t>(z)];
      const int dxs[] = {1, -1, 0, 0};
      const int dys[] = {0, 0, 1, -1};
      for (int n = 0; n < 4; ++n) {
        const int x2 = x + dxs[n], y2 = y + dys[n];
        const double area = dxs[n] != 0 ? a_x : a_y;
        const double half = dxs[n] != 0 ? w / 2 : h / 2;
        if (t.in_bounds(x2, y2)) {
          const double g = series_g(k_c, k_at(z, x2, y2), area, half, half);
          g_sum += g;
          rhs += g * t.at(x2, y2);
        } else {
          // Side film: half-cell conduction in series with convection.
          const double g =
              1.0 / (half / (k_c * area) + 1.0 / (mesh.h_side * area));
          g_sum += g;
          rhs += g * mesh.ambient_c;
        }
      }

      // Vertical neighbors / top and bottom films.
      const double a_z = w * h;
      if (z + 1 < nz) {
        const double g = series_g(k_c, k_at(z + 1, x, y), a_z,
                                  dz[static_cast<std::size_t>(z)] / 2,
                                  dz[static_cast<std::size_t>(z + 1)] / 2);
        g_sum += g;
        rhs += g * field.t_c[static_cast<std::size_t>(z + 1)].at(x, y);
      } else {
        const double g = 1.0 / (dz[static_cast<std::size_t>(z)] / 2 / (k_c * a_z) +
                                1.0 / (mesh.h_top * a_z));
        g_sum += g;
        rhs += g * mesh.ambient_c;
      }
      if (z > 0) {
        const double g = series_g(k_c, k_at(z - 1, x, y), a_z,
                                  dz[static_cast<std::size_t>(z)] / 2,
                                  dz[static_cast<std::size_t>(z - 1)] / 2);
        g_sum += g;
        rhs += g * field.t_c[static_cast<std::size_t>(z - 1)].at(x, y);
      } else {
        const double g = 1.0 / (dz[0] / 2 / (k_c * a_z) + 1.0 / (mesh.h_bottom * a_z));
        g_sum += g;
        rhs += g * mesh.ambient_c;
      }

      const double t_new = rhs / g_sum;
      const double dt = t_new - t.at(x, y);
      t.at(x, y) += opts.sor_omega * dt;
      local_max = std::max(local_max, std::abs(dt));
    }
    row_max_dt[r] = local_max;
  };

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    std::fill(row_max_dt.begin(), row_max_dt.end(), 0.0);
    for (int color = 0; color < 2; ++color) {
      core::parallel_for(n_rows, [&](std::size_t r) { sweep_row_color(r, color); });
    }
    // max is exact under any accumulation order, so this reduction is
    // deterministic by construction.
    double max_dt = 0;
    for (double v : row_max_dt) max_dt = std::max(max_dt, v);
    if (max_dt < opts.tol_k) {
      field.converged = true;
      field.iterations = iter + 1;
      break;
    }
    field.iterations = iter + 1;
  }

  for (const auto& layer : field.t_c) {
    for (double v : layer.data()) field.max_c = std::max(field.max_c, v);
  }
  instrument::counter_add(instrument::Counter::SorIterations,
                          static_cast<std::uint64_t>(field.iterations));
  if (instrument::enabled()) {
    instrument::gauge_set("thermal.steady.max_c", field.max_c);
    instrument::gauge_set("thermal.steady.converged", field.converged ? 1.0 : 0.0);
  }
  return field;
}

TransientThermalResult solve_transient(const ThermalMesh& mesh, double t_stop_s,
                                       const ThermalProbe& probe, const SolverOptions& opts) {
  GIA_SPAN("thermal/transient");
  const int nx = mesh.nx, ny = mesh.ny;
  const int nz = static_cast<int>(mesh.layers.size());
  if (nx < 1 || ny < 1 || nz < 1) throw std::invalid_argument("empty mesh");
  if (probe.layer < 0 || probe.layer >= nz || !mesh.layers[0].k.in_bounds(probe.x, probe.y)) {
    throw std::invalid_argument("bad probe");
  }
  (void)opts;

  const double w = mesh.cell_w_um * 1e-6;
  const double h = mesh.cell_h_um * 1e-6;
  std::vector<double> dz(static_cast<std::size_t>(nz));
  for (int z = 0; z < nz; ++z) {
    dz[static_cast<std::size_t>(z)] = mesh.layers[static_cast<std::size_t>(z)].thickness_um * 1e-6;
  }
  auto k_at = [&](int z, int x, int y) {
    return mesh.layers[static_cast<std::size_t>(z)].k.at(x, y);
  };

  // Per-cell total conductance and capacity set the explicit stability
  // limit dt < min(C / G); run at 40% of it.
  double dt = 1e9;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double k_c = k_at(z, x, y);
        double g = 0;
        g += 2.0 * k_c * h * dz[static_cast<std::size_t>(z)] / w;
        g += 2.0 * k_c * w * dz[static_cast<std::size_t>(z)] / h;
        g += 2.0 * k_c * w * h / dz[static_cast<std::size_t>(z)];
        const double cap = std::max(mesh.layers[static_cast<std::size_t>(z)].cvol, 1e4) * w * h *
                           dz[static_cast<std::size_t>(z)];
        dt = std::min(dt, 0.4 * cap / g);
      }
    }
  }

  std::vector<geometry::Grid<double>> t(static_cast<std::size_t>(nz),
                                        geometry::Grid<double>(nx, ny, mesh.ambient_c));
  std::vector<geometry::Grid<double>> t_next = t;

  // Explicit stepping reads only the previous field, so each (layer, row)
  // updates independently: parallel over rows, deterministic at any thread
  // count because every cell writes its own t_next slot.
  const std::size_t n_rows = static_cast<std::size_t>(nz) * static_cast<std::size_t>(ny);
  auto step_row = [&](std::size_t r) {
    const int z = static_cast<int>(r) / ny;
    const int y = static_cast<int>(r) % ny;
    const auto& layer = mesh.layers[static_cast<std::size_t>(z)];
    for (int x = 0; x < nx; ++x) {
      const double k_c = k_at(z, x, y);
      const double t_c = t[static_cast<std::size_t>(z)].at(x, y);
      double q = layer.power.at(x, y);
      const double a_x = h * dz[static_cast<std::size_t>(z)];
      const double a_y = w * dz[static_cast<std::size_t>(z)];
      const int dxs[] = {1, -1, 0, 0};
      const int dys[] = {0, 0, 1, -1};
      for (int n2 = 0; n2 < 4; ++n2) {
        const int x2 = x + dxs[n2], y2 = y + dys[n2];
        const double area = dxs[n2] != 0 ? a_x : a_y;
        const double half = dxs[n2] != 0 ? w / 2 : h / 2;
        if (t[static_cast<std::size_t>(z)].in_bounds(x2, y2)) {
          const double g = series_g(k_c, k_at(z, x2, y2), area, half, half);
          q += g * (t[static_cast<std::size_t>(z)].at(x2, y2) - t_c);
        } else {
          const double g = 1.0 / (half / (k_c * area) + 1.0 / (mesh.h_side * area));
          q += g * (mesh.ambient_c - t_c);
        }
      }
      const double a_z = w * h;
      if (z + 1 < nz) {
        const double g = series_g(k_c, k_at(z + 1, x, y), a_z,
                                  dz[static_cast<std::size_t>(z)] / 2,
                                  dz[static_cast<std::size_t>(z + 1)] / 2);
        q += g * (t[static_cast<std::size_t>(z + 1)].at(x, y) - t_c);
      } else {
        const double g = 1.0 / (dz[static_cast<std::size_t>(z)] / 2 / (k_c * a_z) +
                                1.0 / (mesh.h_top * a_z));
        q += g * (mesh.ambient_c - t_c);
      }
      if (z > 0) {
        const double g = series_g(k_c, k_at(z - 1, x, y), a_z,
                                  dz[static_cast<std::size_t>(z)] / 2,
                                  dz[static_cast<std::size_t>(z - 1)] / 2);
        q += g * (t[static_cast<std::size_t>(z - 1)].at(x, y) - t_c);
      } else {
        const double g = 1.0 / (dz[0] / 2 / (k_c * a_z) + 1.0 / (mesh.h_bottom * a_z));
        q += g * (mesh.ambient_c - t_c);
      }
      const double cap = std::max(layer.cvol, 1e4) * w * h * dz[static_cast<std::size_t>(z)];
      t_next[static_cast<std::size_t>(z)].at(x, y) = t_c + dt * q / cap;
    }
  };

  TransientThermalResult out;
  const auto n_steps = static_cast<long>(std::ceil(t_stop_s / dt));
  const long record_every = std::max(1L, n_steps / 400);
  for (long step = 0; step <= n_steps; ++step) {
    if (step % record_every == 0) {
      out.time_s.push_back(step * dt);
      out.probe_c.push_back(
          t[static_cast<std::size_t>(probe.layer)].at(probe.x, probe.y));
    }
    core::parallel_for(n_rows, step_row);
    std::swap(t, t_next);
  }
  instrument::counter_add(instrument::Counter::ThermalTransientSteps,
                          static_cast<std::uint64_t>(n_steps + 1));

  out.final_field.nx = nx;
  out.final_field.ny = ny;
  out.final_field.t_c = t;
  for (const auto& layer : out.final_field.t_c) {
    for (double v : layer.data()) out.final_field.max_c = std::max(out.final_field.max_c, v);
  }
  // Dominant time constant from the 63.2% crossing of the probe's rise.
  const double rise = out.probe_c.back() - out.probe_c.front();
  if (rise > 1e-9) {
    const double target = out.probe_c.front() + 0.632 * rise;
    for (std::size_t i = 1; i < out.probe_c.size(); ++i) {
      if (out.probe_c[i] >= target) {
        out.tau_s = out.time_s[i];
        break;
      }
    }
  }
  return out;
}

}  // namespace gia::thermal
