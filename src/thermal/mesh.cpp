#include "thermal/mesh.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/units.hpp"
#include "tech/material.hpp"
#include "thermal/power_map.hpp"

namespace gia::thermal {

using geometry::Grid;
using geometry::Rect;
using netlist::ChipletSide;

int ThermalMesh::cell_x(double x_um) const {
  return std::clamp(static_cast<int>((x_um - ox_um) / cell_w_um), 0, nx - 1);
}
int ThermalMesh::cell_y(double y_um) const {
  return std::clamp(static_cast<int>((y_um - oy_um) / cell_h_um), 0, ny - 1);
}

namespace {

constexpr double k_air = 0.026;
constexpr double k_silicon = 149.0;
constexpr double k_copper = 398.0;
constexpr double k_underfill = 0.5;
constexpr double k_bump_layer = 2.0;  ///< solder bumps in underfill
constexpr double k_daf = 0.3;

struct Builder {
  ThermalMesh mesh;

  ZLayer make_layer(const std::string& name, double thickness_um, double k_background) const {
    ZLayer l;
    l.name = name;
    l.thickness_um = thickness_um;
    l.k = Grid<double>(mesh.nx, mesh.ny, k_background);
    l.power = Grid<double>(mesh.nx, mesh.ny, 0.0);
    return l;
  }

  void paint(ZLayer& l, const Rect& r, double k) const {
    for (int y = mesh.cell_y(r.ly); y <= mesh.cell_y(r.uy - 1e-9); ++y) {
      for (int x = mesh.cell_x(r.lx); x <= mesh.cell_x(r.ux - 1e-9); ++x) {
        l.k.at(x, y) = k;
      }
    }
  }

  void add_power(ZLayer& l, const Rect& r, double watts, unsigned seed) const {
    const int x0 = mesh.cell_x(r.lx), x1 = mesh.cell_x(r.ux - 1e-9);
    const int y0 = mesh.cell_y(r.ly), y1 = mesh.cell_y(r.uy - 1e-9);
    const auto tile = make_power_map(watts, {.tiles = 8, .nonuniformity = 0.35, .seed = seed});
    const auto cells = resample_power_map(tile, x1 - x0 + 1, y1 - y0 + 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        l.power.at(x, y) += cells.at(x - x0, y - y0);
      }
    }
  }
};

/// Effective isotropic conductivity of the copper-loaded RDL composite.
double rdl_k(const tech::Technology& t) {
  const double f = t.rules.metal_thickness_um /
                   (t.rules.metal_thickness_um + t.rules.dielectric_thickness_um);
  return 0.5 * f * k_copper + (1.0 - f) * t.rdl_dielectric.thermal_k;
}

/// Substrate conductivity including its through-via (TGV/TSV/PTH) copper
/// field -- the paper's primary vertical heat path on glass ("heat ...
/// dissipates through TGVs to the RDL", Section VII-G).
double substrate_k(const tech::Technology& t) {
  const double r = t.through_via.diameter_um / 2.0;
  const double f = geometry::constants::pi * r * r /
                   (t.through_via.pitch_um * t.through_via.pitch_um);
  return t.substrate.thermal_k + f * k_copper;
}

double die_power(const MeshOptions& o, ChipletSide side) {
  return side == ChipletSide::Logic ? o.logic_power_w : o.memory_power_w;
}

unsigned die_seed(const MeshOptions& o, const interposer::PlacedDie& d) {
  return o.power_seed + static_cast<unsigned>(d.tile) * 17 +
         (d.side == ChipletSide::Logic ? 0u : 101u);
}

}  // namespace

ThermalMesh build_thermal_mesh(const interposer::InterposerDesign& design,
                               const MeshOptions& opts) {
  const auto& tech = design.technology;
  const Rect ip = design.floorplan.outline;
  const double margin =
      std::max(opts.board_margin_frac * std::max(ip.width(), ip.height()), 1500.0);
  const Rect extent = ip.inflated(margin);

  Builder b;
  b.mesh.nx = opts.nx;
  b.mesh.ny = opts.ny;
  b.mesh.ox_um = extent.lx;
  b.mesh.oy_um = extent.ly;
  b.mesh.cell_w_um = extent.width() / opts.nx;
  b.mesh.cell_h_um = extent.height() / opts.ny;
  auto& mesh = b.mesh;

  const double rdl_thickness =
      std::max(10.0, tech.rules.metal_layers * (tech.rules.metal_thickness_um +
                                                tech.rules.dielectric_thickness_um));

  // Board spans the whole mesh in every configuration.
  mesh.layers.push_back(b.make_layer("board", opts.board_thickness_um, opts.board_k));

  auto add_top_dies = [&](bool skip_embedded) {
    auto bumps = b.make_layer("ubump", 15, k_air);
    auto active = b.make_layer("die_active", 20, k_air);
    auto bulk = b.make_layer("die_bulk", 180, k_air);
    for (const auto& die : design.floorplan.dies) {
      if (skip_embedded && die.embedded) continue;
      b.paint(bumps, die.outline, k_bump_layer);
      b.paint(active, die.outline, k_silicon);
      b.paint(bulk, die.outline, k_silicon);
      // Flip-chip: transistors face the bumps (heat enters at die bottom).
      b.add_power(active, die.outline, die_power(opts, die.side), die_seed(opts, die));
    }
    mesh.layers.push_back(std::move(bumps));
    mesh.layers.push_back(std::move(active));
    mesh.layers.push_back(std::move(bulk));
  };

  switch (tech.integration) {
    case tech::IntegrationStyle::SideBySide: {
      auto substrate = b.make_layer("substrate", tech.stackup.layers().front().thickness_um,
                                    k_air);
      b.paint(substrate, ip, substrate_k(tech));
      mesh.layers.push_back(std::move(substrate));
      auto rdl = b.make_layer("rdl", rdl_thickness, k_air);
      b.paint(rdl, ip, rdl_k(tech));
      b.add_power(rdl, ip, opts.interposer_power_w, opts.power_seed + 7);
      mesh.layers.push_back(std::move(rdl));
      add_top_dies(false);
      break;
    }
    case tech::IntegrationStyle::EmbeddedDie: {
      // Glass core with the memory dies embedded in cavities: DAF under the
      // die, then the die body, with its active face up (Fig 1b).
      auto core_bottom = b.make_layer("core_daf", 12, k_air);  // 10um DAF class
      auto core_die = b.make_layer("core_die", 123, k_air);
      auto core_active = b.make_layer("core_active", 20, k_air);
      b.paint(core_bottom, ip, substrate_k(tech));
      b.paint(core_die, ip, substrate_k(tech));
      b.paint(core_active, ip, substrate_k(tech));
      // Optional thermal-via field under the cavity: copper columns through
      // the DAF and the residual glass floor toward the package.
      const double k_under_die = k_daf + opts.thermal_via_fraction * k_copper;
      for (const auto& die : design.floorplan.dies) {
        if (!die.embedded) continue;
        b.paint(core_bottom, die.outline, k_under_die);
        b.paint(core_die, die.outline, k_silicon);
        b.paint(core_active, die.outline, k_silicon);
        // Heat applied at the TOP of embedded dies (Section VII-G).
        b.add_power(core_active, die.outline, die_power(opts, die.side), die_seed(opts, die));
      }
      mesh.layers.push_back(std::move(core_bottom));
      mesh.layers.push_back(std::move(core_die));
      mesh.layers.push_back(std::move(core_active));

      auto rdl = b.make_layer("rdl", rdl_thickness, k_air);
      b.paint(rdl, ip, rdl_k(tech));
      b.add_power(rdl, ip, opts.interposer_power_w, opts.power_seed + 7);
      mesh.layers.push_back(std::move(rdl));
      add_top_dies(true);
      break;
    }
    case tech::IntegrationStyle::TsvStack: {
      // Fig 5 stack, bottom-up: mem0, logic0, logic1, mem1. Dies are
      // thinned to 20um for the mini-TSVs, joined by bump layers.
      const ChipletSide order_side[] = {ChipletSide::Memory, ChipletSide::Logic,
                                        ChipletSide::Logic, ChipletSide::Memory};
      const int order_tile[] = {0, 0, 1, 1};
      for (int i = 0; i < 4; ++i) {
        const auto& die = design.floorplan.die(order_side[i], order_tile[i]);
        auto bumps = b.make_layer("ubump" + std::to_string(i), 15, k_air);
        b.paint(bumps, die.outline, k_bump_layer);
        mesh.layers.push_back(std::move(bumps));
        auto die_layer = b.make_layer("die" + std::to_string(i), i == 3 ? 100.0 : 20.0, k_air);
        b.paint(die_layer, die.outline, k_silicon);
        b.add_power(die_layer, die.outline, die_power(opts, order_side[i]),
                    die_seed(opts, die));
        mesh.layers.push_back(std::move(die_layer));
      }
      break;
    }
    case tech::IntegrationStyle::SingleDie: {
      auto die_layer = b.make_layer("die", 200, k_air);
      b.paint(die_layer, ip, k_silicon);
      const double total =
          2 * (opts.logic_power_w + opts.memory_power_w) + opts.interposer_power_w;
      b.add_power(die_layer, ip, total, opts.power_seed);
      mesh.layers.push_back(std::move(die_layer));
      break;
    }
  }
  return mesh;
}

}  // namespace gia::thermal
