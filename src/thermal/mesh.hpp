#pragma once

#include <string>
#include <vector>

#include "geometry/grid.hpp"
#include "interposer/design.hpp"

/// \file mesh.hpp
/// Voxel thermal mesh of a packaged design: a lateral grid times a list of
/// z-layers (package, substrate with optional embedded dies, RDL, bump/
/// underfill, dies, mold/air), each voxel carrying a thermal conductivity
/// and a dissipated power. Mirrors the paper's coarse-grained IcePak tile
/// model (Section VII-G).

namespace gia::thermal {

struct ZLayer {
  std::string name;
  double thickness_um = 100.0;
  geometry::Grid<double> k;      ///< conductivity [W/(m*K)] per lateral cell
  geometry::Grid<double> power;  ///< dissipated power [W] per cell
  /// Volumetric heat capacity [J/(m^3 K)] (transient analysis); a single
  /// per-layer value is adequate at this mesh altitude.
  double cvol = 1.7e6;
};

struct ThermalMesh {
  int nx = 0, ny = 0;
  double cell_w_um = 0, cell_h_um = 0;
  /// Mesh origin in interposer coordinates [um] (negative: the mesh extends
  /// past the interposer into the board for lateral heat spreading).
  double ox_um = 0, oy_um = 0;
  std::vector<ZLayer> layers;  ///< bottom (board side) to top (air side)
  double ambient_c = 22.0;
  /// Convective film coefficients [W/(m^2*K)]: the bottom couples the board
  /// to the chassis/ambient system; the top and sides see 0.1 m/s air
  /// (Section VII-G).
  double h_top = 20.0;
  double h_bottom = 20000.0;
  double h_side = 15.0;

  /// Lateral cell index of an interposer-coordinate point.
  int cell_x(double x_um) const;
  int cell_y(double y_um) const;
};

struct MeshOptions {
  int nx = 48;
  int ny = 48;
  /// Power of a die landing in the mesh; indexed by (side, tile).
  double logic_power_w = 0.142;
  double memory_power_w = 0.046;
  /// Interposer wiring dissipation spread over the RDL layer.
  double interposer_power_w = 0.03;
  /// Board extends this fraction of the interposer size past each edge,
  /// providing the lateral spreading path to the system sink.
  double board_margin_frac = 0.5;
  /// Copper thermal-via fill fraction under embedded dies (the paper's
  /// future-work mitigation for the trapped Glass 3D memory die: "thermal
  /// vias could aid in transferring heat from the embedded die to the
  /// package substrate", Section VII-G). 0 = none (the paper's design).
  double thermal_via_fraction = 0.0;
  /// Board/package composite: laminate with copper planes and ball fields.
  double board_thickness_um = 1000.0;
  double board_k = 12.0;
  unsigned power_seed = 11;
};

/// Build the stack for a designed system (any of the six technologies).
ThermalMesh build_thermal_mesh(const interposer::InterposerDesign& design,
                               const MeshOptions& opts = {});

}  // namespace gia::thermal
