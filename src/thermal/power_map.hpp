#pragma once

#include "geometry/grid.hpp"

/// \file power_map.hpp
/// Per-die power density maps. The paper builds 8x8 tile-based maps with
/// Ansys CPS (Section VII-G); we generate seeded tile maps with realistic
/// nonuniformity, normalized to the die's total power from Table III.

namespace gia::thermal {

struct PowerMapOptions {
  int tiles = 8;              ///< map is tiles x tiles
  double nonuniformity = 0.35;  ///< +/- fraction of tile-to-tile variation
  unsigned seed = 11;
};

/// Tile map summing to `total_w` watts.
geometry::Grid<double> make_power_map(double total_w, const PowerMapOptions& opts = {});

/// Resample a tile map onto an arbitrary cell grid covering the same die
/// (area-weighted, preserves the total).
geometry::Grid<double> resample_power_map(const geometry::Grid<double>& map, int nx, int ny);

}  // namespace gia::thermal
