#pragma once

#include <vector>

#include "thermal/mesh.hpp"

/// \file solver.hpp
/// Steady-state finite-volume conduction solver with convective boundaries.
/// Voxel-to-voxel conductances use series (harmonic) combination of the
/// half-cell resistances, so layered stacks with 100x conductivity contrast
/// (glass vs silicon) behave correctly.
///
/// Two steady-state methods share the discretization:
///  * fixed-sweep red-black SOR -- the small-mesh reference, byte-stable;
///  * geometric multigrid V-cycles (multigrid.cpp) -- red-black z-line
///    smoothing (exact vertical-column solves), lateral semi-coarsening
///    with full-weighting restriction and bilinear prolongation, for
///    production-scale meshes where SOR's O(N) sweep count becomes the
///    wall.
/// `SolverOptions::method` picks explicitly; `Auto` consults the
/// process-wide `GIA_SOLVER` backend (core/solver_backend.hpp), which keeps
/// the default 48x48 flow mesh on SOR so flow output stays byte-identical.
/// Meshes whose extents cannot halve (odd, or below the coarsening floor)
/// always fall back to SOR.

namespace gia::thermal {

struct SolverOptions {
  double sor_omega = 1.9;
  int max_iters = 15000;
  double tol_k = 5e-5;  ///< max temperature update per sweep / V-cycle [K]

  enum class Method { Auto, Sor, Multigrid };
  Method method = Method::Auto;

  int mg_pre_smooth = 2;   ///< red-black z-line sweeps before coarse correction
  int mg_post_smooth = 2;  ///< sweeps after prolongation
  /// Stop coarsening when an extent would drop below this. The coarsest
  /// level is solved exactly (dense LU, factored once) -- essential because
  /// the weak convective films leave a near-singular global mode that
  /// smoothing alone cannot resolve -- so the floor is kept low to make
  /// that factorization trivially small.
  int mg_min_extent = 4;
};

struct ThermalField {
  int nx = 0, ny = 0;
  std::vector<geometry::Grid<double>> t_c;  ///< per z-layer temperatures [C]
  double max_c = 0;
  int iterations = 0;
  bool converged = false;

  double at(int layer, int x, int y) const { return t_c[static_cast<std::size_t>(layer)].at(x, y); }
};

ThermalField solve_steady_state(const ThermalMesh& mesh, const SolverOptions& opts = {});

/// The two concrete methods behind solve_steady_state, exposed for direct
/// comparison (tests, benches). `iterations` counts SOR sweeps for the
/// former and V-cycles for the latter. solve_steady_state_multigrid falls
/// back to SOR when the mesh cannot coarsen at least once.
ThermalField solve_steady_state_sor(const ThermalMesh& mesh, const SolverOptions& opts = {});
ThermalField solve_steady_state_multigrid(const ThermalMesh& mesh, const SolverOptions& opts = {});

/// Transient heating from ambient with the mesh's power map applied at
/// t = 0 (explicit finite-volume stepping; the step size is chosen
/// automatically from the stability limit). Returns the temperature of the
/// probed cell over time plus the final field.
struct TransientThermalResult {
  std::vector<double> time_s;
  std::vector<double> probe_c;
  ThermalField final_field;
  /// Time for the probe to cover 63.2% of its total rise (the dominant
  /// thermal time constant).
  double tau_s = 0;
};

struct ThermalProbe {
  int layer = 0;
  int x = 0;
  int y = 0;
};

TransientThermalResult solve_transient(const ThermalMesh& mesh, double t_stop_s,
                                       const ThermalProbe& probe,
                                       const SolverOptions& opts = {});

}  // namespace gia::thermal
