#pragma once

#include <vector>

#include "thermal/mesh.hpp"

/// \file solver.hpp
/// Steady-state finite-volume conduction solver with convective boundaries,
/// solved by successive over-relaxation. Voxel-to-voxel conductances use
/// series (harmonic) combination of the half-cell resistances, so layered
/// stacks with 100x conductivity contrast (glass vs silicon) behave
/// correctly.

namespace gia::thermal {

struct SolverOptions {
  double sor_omega = 1.9;
  int max_iters = 15000;
  double tol_k = 5e-5;  ///< max temperature update per sweep [K]
};

struct ThermalField {
  int nx = 0, ny = 0;
  std::vector<geometry::Grid<double>> t_c;  ///< per z-layer temperatures [C]
  double max_c = 0;
  int iterations = 0;
  bool converged = false;

  double at(int layer, int x, int y) const { return t_c[static_cast<std::size_t>(layer)].at(x, y); }
};

ThermalField solve_steady_state(const ThermalMesh& mesh, const SolverOptions& opts = {});

/// Transient heating from ambient with the mesh's power map applied at
/// t = 0 (explicit finite-volume stepping; the step size is chosen
/// automatically from the stability limit). Returns the temperature of the
/// probed cell over time plus the final field.
struct TransientThermalResult {
  std::vector<double> time_s;
  std::vector<double> probe_c;
  ThermalField final_field;
  /// Time for the probe to cover 63.2% of its total rise (the dominant
  /// thermal time constant).
  double tau_s = 0;
};

struct ThermalProbe {
  int layer = 0;
  int x = 0;
  int y = 0;
};

TransientThermalResult solve_transient(const ThermalMesh& mesh, double t_stop_s,
                                       const ThermalProbe& probe,
                                       const SolverOptions& opts = {});

}  // namespace gia::thermal
