#include "thermal/power_map.hpp"

#include <random>
#include <stdexcept>

namespace gia::thermal {

geometry::Grid<double> make_power_map(double total_w, const PowerMapOptions& opts) {
  if (total_w < 0 || opts.tiles < 1) throw std::invalid_argument("bad power map inputs");
  std::mt19937 rng(opts.seed);
  std::uniform_real_distribution<double> jitter(1.0 - opts.nonuniformity,
                                                1.0 + opts.nonuniformity);
  geometry::Grid<double> map(opts.tiles, opts.tiles, 0.0);
  double sum = 0;
  for (int y = 0; y < opts.tiles; ++y) {
    for (int x = 0; x < opts.tiles; ++x) {
      map.at(x, y) = jitter(rng);
      sum += map.at(x, y);
    }
  }
  for (auto& v : map.data()) v *= total_w / sum;
  return map;
}

geometry::Grid<double> resample_power_map(const geometry::Grid<double>& map, int nx, int ny) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("bad resample target");
  geometry::Grid<double> out(nx, ny, 0.0);
  // Distribute each tile's power over the target cells it covers
  // (nearest-tile assignment per target cell, then renormalize).
  double total = 0;
  for (double v : map.data()) total += v;
  double assigned = 0;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int tx = std::min(map.nx() - 1, x * map.nx() / nx);
      const int ty = std::min(map.ny() - 1, y * map.ny() / ny);
      const double cells_per_tile =
          (static_cast<double>(nx) / map.nx()) * (static_cast<double>(ny) / map.ny());
      out.at(x, y) = map.at(tx, ty) / cells_per_tile;
      assigned += out.at(x, y);
    }
  }
  if (assigned > 0) {
    for (auto& v : out.data()) v *= total / assigned;
  }
  return out;
}

}  // namespace gia::thermal
