#include "thermal/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace gia::thermal {

double ThermalReport::hotspot(const std::string& die) const {
  const auto it = dies.find(die);
  if (it == dies.end()) throw std::out_of_range("no die " + die);
  return it->second.hotspot_c;
}

ThermalReport analyze(const interposer::InterposerDesign& design, const ThermalMesh& mesh,
                      const ThermalField& field) {
  ThermalReport out;
  out.ambient_c = mesh.ambient_c;

  // Die hotspots: max/mean over the die's lateral footprint in the layers
  // that hold silicon for that die. Layer names encode the role.
  for (const auto& die : design.floorplan.dies) {
    DieThermal dt;
    dt.die = die.name;
    double sum = 0;
    int cnt = 0;
    for (std::size_t z = 0; z < mesh.layers.size(); ++z) {
      const auto& name = mesh.layers[z].name;
      const bool embedded_layer = name.rfind("core_", 0) == 0 && name != "core_daf";
      const bool top_die_layer = name.rfind("die", 0) == 0;
      if (!(die.embedded ? embedded_layer : top_die_layer)) continue;
      const int x0 = mesh.cell_x(die.outline.lx), x1 = mesh.cell_x(die.outline.ux - 1e-9);
      const int y0 = mesh.cell_y(die.outline.ly), y1 = mesh.cell_y(die.outline.uy - 1e-9);
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          const double t = field.at(static_cast<int>(z), x, y);
          dt.hotspot_c = std::max(dt.hotspot_c, t);
          sum += t;
          ++cnt;
        }
      }
    }
    dt.average_c = cnt > 0 ? sum / cnt : mesh.ambient_c;
    out.dies[die.name] = dt;
  }

  // Interposer-level map: the substrate body (where glass-vs-silicon
  // spreading differs, Fig 18), the embedded-core layer for Glass 3D, or
  // the base die for the TSV stack.
  int ip_layer = -1;
  for (std::size_t z = 0; z < mesh.layers.size(); ++z) {
    const auto& name = mesh.layers[z].name;
    if (name == "substrate" || name == "core_die" || name == "die0") {
      ip_layer = static_cast<int>(z);
    }
  }
  if (ip_layer < 0) ip_layer = static_cast<int>(mesh.layers.size()) - 1;
  // Statistics over the interposer outline only (the board margin would
  // dilute the spread metric differently per technology).
  const auto& t = field.t_c[static_cast<std::size_t>(ip_layer)];
  const auto& outline = design.floorplan.outline;
  const int x0 = mesh.cell_x(outline.lx), x1 = mesh.cell_x(outline.ux - 1e-9);
  const int y0 = mesh.cell_y(outline.ly), y1 = mesh.cell_y(outline.uy - 1e-9);
  double hot = mesh.ambient_c;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) hot = std::max(hot, t.at(x, y));
  }
  out.interposer_hotspot_c = hot;
  double rise_sum = 0;
  int total = 0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      rise_sum += t.at(x, y) - mesh.ambient_c;
      ++total;
    }
  }
  const double peak_rise = hot - mesh.ambient_c;
  out.hotspot_spread =
      (total > 0 && peak_rise > 1e-9) ? (rise_sum / total) / peak_rise : 0.0;
  return out;
}

ThermalReport run_thermal(const interposer::InterposerDesign& design,
                          const MeshOptions& mesh_opts, const SolverOptions& solver_opts) {
  const auto mesh = build_thermal_mesh(design, mesh_opts);
  const auto field = solve_steady_state(mesh, solver_opts);
  return analyze(design, mesh, field);
}

}  // namespace gia::thermal
