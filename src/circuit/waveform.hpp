#pragma once

#include <optional>
#include <vector>

/// \file waveform.hpp
/// Uniformly sampled waveform plus the measurements the reliability studies
/// need: threshold crossings, 50% propagation delay, average power, settling
/// time, peak-to-peak excursion.

namespace gia::circuit {

class Waveform {
 public:
  Waveform() = default;
  Waveform(double dt, std::vector<double> samples) : dt_(dt), s_(std::move(samples)) {}

  double dt() const { return dt_; }
  std::size_t size() const { return s_.size(); }
  bool empty() const { return s_.empty(); }
  double duration() const { return s_.empty() ? 0.0 : dt_ * static_cast<double>(s_.size() - 1); }
  const std::vector<double>& samples() const { return s_; }
  double operator[](std::size_t i) const { return s_[i]; }

  /// Linear interpolation; clamped at the ends.
  double at(double t) const;
  double min() const;
  double max() const;
  double mean() const;
  double final_value() const { return s_.empty() ? 0.0 : s_.back(); }

  /// First time after `t_from` where the waveform crosses `level` in the
  /// given direction (+1 rising, -1 falling, 0 either).
  std::optional<double> crossing(double level, double t_from = 0.0, int direction = 0) const;

  /// All crossings of `level` after `t_from`.
  std::vector<double> crossings(double level, double t_from = 0.0, int direction = 0) const;

  /// Last time after which the waveform stays within +/- tol of `target`.
  /// nullopt when it never settles.
  std::optional<double> settling_time(double target, double tol) const;

 private:
  double dt_ = 1.0;
  std::vector<double> s_;
};

/// 50% propagation delay from the `in` crossing of mid-level to the
/// subsequent `out` crossing of mid-level (same direction). nullopt when
/// either edge is missing.
std::optional<double> propagation_delay(const Waveform& in, const Waveform& out, double v_low,
                                        double v_high, double t_from = 0.0, int direction = +1);

/// Average of v(t)*i(t) over the record (supply power when v is the rail
/// voltage waveform and i the rail current).
double average_power(const Waveform& v, const Waveform& i);

}  // namespace gia::circuit
