#pragma once

#include "circuit/circuit.hpp"
#include "circuit/dense_lu.hpp"

/// \file mna.hpp
/// Shared modified-nodal-analysis stamping. Unknowns: node voltages for
/// nodes 1..N-1 (ground eliminated), then branch currents for voltage
/// sources, inductors, and VCVS outputs, in the order Circuit defines.

namespace gia::circuit {

/// Map a node to its unknown row, or -1 for ground.
inline int node_row(NodeId n) { return n - 1; }

/// Stamp a conductance g between nodes a and b into a matrix that supports
/// add(r, c, T).
template <typename M, typename T>
void stamp_conductance(M& mat, NodeId a, NodeId b, T g) {
  const int ra = node_row(a), rb = node_row(b);
  if (ra >= 0) mat.add(ra, ra, g);
  if (rb >= 0) mat.add(rb, rb, g);
  if (ra >= 0 && rb >= 0) {
    mat.add(ra, rb, -g);
    mat.add(rb, ra, -g);
  }
}

/// Stamp the current-branch incidence for a two-terminal branch whose
/// current unknown is column `col`, flowing from `a` to `b`: KCL rows plus
/// the (a - b) part of the branch equation row.
template <typename M, typename T>
void stamp_branch_incidence(M& mat, NodeId a, NodeId b, int col, T one) {
  const int ra = node_row(a), rb = node_row(b);
  if (ra >= 0) { mat.add(ra, col, one); mat.add(col, ra, one); }
  if (rb >= 0) { mat.add(rb, col, -one); mat.add(col, rb, -one); }
}

/// Stamp the elements whose pattern is identical in DC, AC and transient:
/// resistors, voltage-source branch incidence, VCVS constraints. (Values of
/// dynamic elements and RHS differ per analysis.) Templated on the matrix so
/// the same stamping code fills dense and sparse-CSR assemblies.
template <typename T, typename M>
void stamp_static(const Circuit& ckt, M& A) {
  for (const auto& r : ckt.resistors()) {
    stamp_conductance(A, r.a, r.b, T{1.0 / r.ohms});
  }
  const auto& vs = ckt.vsources();
  for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
    stamp_branch_incidence(A, vs[static_cast<std::size_t>(j)].plus,
                           vs[static_cast<std::size_t>(j)].minus, ckt.vsource_current_index(j),
                           T{1.0});
  }
  const auto& es = ckt.vcvs();
  for (int j = 0; j < static_cast<int>(es.size()); ++j) {
    const auto& e = es[static_cast<std::size_t>(j)];
    const int col = ckt.vcvs_current_index(j);
    // KCL incidence for the output branch + (out_p - out_n) in the row.
    stamp_branch_incidence(A, e.out_p, e.out_n, col, T{1.0});
    // -gain * (ctrl_p - ctrl_n) completes the constraint row.
    const int rp = node_row(e.ctrl_p), rn = node_row(e.ctrl_n);
    if (rp >= 0) A.add(col, rp, T{-e.gain});
    if (rn >= 0) A.add(col, rn, T{e.gain});
  }
}

void stamp_static_real(const Circuit& ckt, RealMatrix& A);
void stamp_static_complex(const Circuit& ckt, ComplexMatrix& A);

}  // namespace gia::circuit
