#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/instrument.hpp"

/// \file sparse.hpp
/// Sparse CSR matrix assembly and preconditioned Krylov solvers, templated
/// on the scalar so the same code serves real (DC/transient) and complex
/// (AC) MNA systems -- the production-scale counterpart of dense_lu.hpp.
///
/// Assembly mirrors `DenseMatrix`'s `add(r, c, v)` stamping interface, so
/// `mna.hpp`'s `stamp_*` templates work unchanged: stamp COO triplets, then
/// `finalize()` sorts them into CSR (duplicates summed in insertion order,
/// so the result is deterministic). After finalize the pattern is frozen and
/// two cheap per-point refresh mechanisms avoid reassembly across AC
/// frequency points / transient steps:
///
///  * `begin_refresh()` + replaying a prefix of the original `add` sequence
///    rewrites values in place (each assembly-order triplet remembers its
///    CSR slot), and
///  * `slot(r, c)` returns the CSR value index of an entry so callers can
///    precompute the handful of frequency-dependent slots once and patch a
///    copied value array per point.
///
/// Solvers: CG for SPD systems, BiCGSTAB for the general/indefinite/complex
/// MNA case, each taking a preconditioner (Jacobi or ILU(0)). Iterations are
/// surfaced through `Counter::KrylovIterations` and the returned stats.

namespace gia::circuit {

/// Scalar helpers shared by the solvers (identity conj for real scalars).
inline double sp_conj(double v) { return v; }
inline std::complex<double> sp_conj(const std::complex<double>& v) { return std::conj(v); }
inline double sp_real(double v) { return v; }
inline double sp_real(const std::complex<double>& v) { return v.real(); }

/// Non-owning CSR view: pattern plus a value array. Lets the AC sweep share
/// one pattern across frequency points with per-point value arrays.
template <typename T>
struct CsrView {
  int n = 0;
  const int* row_ptr = nullptr;  ///< n + 1 entries
  const int* col_idx = nullptr;  ///< nnz entries, sorted within each row
  const T* vals = nullptr;       ///< nnz entries

  /// y = A x.
  void multiply(const T* x, T* y) const {
    for (int r = 0; r < n; ++r) {
      T acc{};
      for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) acc += vals[i] * x[col_idx[i]];
      y[r] = acc;
    }
  }
};

template <typename T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(int n) : n_(n) {}

  int size() const { return n_; }
  bool finalized() const { return finalized_; }
  std::size_t nnz() const { return vals_.size(); }

  /// Assembly mode (before `finalize`): record a COO triplet. Refresh mode
  /// (after `begin_refresh`): fold `v` into the CSR slot of the next
  /// assembly-order triplet, which must carry the same (r, c).
  void add(int r, int c, T v) {
    assert(r >= 0 && r < n_ && c >= 0 && c < n_);
    if (!finalized_) {
      tri_r_.push_back(r);
      tri_c_.push_back(c);
      tri_v_.push_back(v);
      return;
    }
    assert(cursor_ < tri_slot_.size() && "refresh must replay the assembly prefix");
    assert(tri_r_[cursor_] == r && tri_c_[cursor_] == c &&
           "refresh add() out of assembly order");
    vals_[static_cast<std::size_t>(tri_slot_[cursor_])] += v;
    ++cursor_;
  }

  /// Sort the recorded triplets into CSR. Duplicate (r, c) entries are
  /// summed in insertion order (deterministic). When `ensure_diagonal`,
  /// every (i, i) slot exists (explicit zero if never stamped) -- ILU(0)
  /// needs structural diagonals on MNA branch rows, whose stamped pattern
  /// is purely off-diagonal.
  void finalize(bool ensure_diagonal = true) {
    if (finalized_) throw std::logic_error("SparseMatrix already finalized");
    if (ensure_diagonal) {
      // Appended after the stamped triplets so they never perturb the
      // insertion-order value summation.
      for (int i = 0; i < n_; ++i) {
        tri_r_.push_back(i);
        tri_c_.push_back(i);
        tri_v_.push_back(T{});
      }
    }
    const std::size_t nt = tri_r_.size();
    std::vector<std::size_t> order(nt);
    for (std::size_t i = 0; i < nt; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (tri_r_[a] != tri_r_[b]) return tri_r_[a] < tri_r_[b];
      if (tri_c_[a] != tri_c_[b]) return tri_c_[a] < tri_c_[b];
      return a < b;  // keep insertion order within one (r, c) group
    });

    row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
    col_idx_.clear();
    vals_.clear();
    tri_slot_.assign(nt, 0);
    int prev_r = -1, prev_c = -1;
    for (std::size_t oi = 0; oi < nt; ++oi) {
      const std::size_t t = order[oi];
      const int r = tri_r_[t], c = tri_c_[t];
      if (r != prev_r || c != prev_c) {
        col_idx_.push_back(c);
        vals_.push_back(tri_v_[t]);
        ++row_ptr_[static_cast<std::size_t>(r) + 1];
        prev_r = r;
        prev_c = c;
      } else {
        vals_.back() += tri_v_[t];
      }
      tri_slot_[t] = static_cast<int>(vals_.size()) - 1;
    }
    for (int r = 0; r < n_; ++r) row_ptr_[static_cast<std::size_t>(r) + 1] += row_ptr_[static_cast<std::size_t>(r)];
    // Drop the assembly values; keep (r, c) and slots for refresh replay.
    tri_v_.clear();
    tri_v_.shrink_to_fit();
    finalized_ = true;
  }

  /// Zero all values and arm refresh mode: subsequent `add` calls must
  /// replay a prefix of the assembly sequence (same (r, c) order).
  void begin_refresh() {
    if (!finalized_) throw std::logic_error("begin_refresh before finalize");
    vals_.assign(vals_.size(), T{});
    cursor_ = 0;
  }

  /// CSR value index of entry (r, c), or -1 when outside the pattern.
  int slot(int r, int c) const {
    assert(finalized_);
    int lo = row_ptr_[static_cast<std::size_t>(r)], hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (col_idx_[static_cast<std::size_t>(mid)] < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < row_ptr_[static_cast<std::size_t>(r) + 1] && col_idx_[static_cast<std::size_t>(lo)] == c) return lo;
    return -1;
  }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<T>& vals() const { return vals_; }
  std::vector<T>& vals() { return vals_; }

  CsrView<T> view() const {
    assert(finalized_);
    return {n_, row_ptr_.data(), col_idx_.data(), vals_.data()};
  }
  /// View sharing this pattern with a caller-owned value array (e.g. a
  /// per-frequency copy).
  CsrView<T> view_with(const T* vals) const {
    assert(finalized_);
    return {n_, row_ptr_.data(), col_idx_.data(), vals};
  }

 private:
  int n_ = 0;
  std::vector<int> tri_r_, tri_c_;  ///< assembly (r, c) sequence, kept for refresh
  std::vector<T> tri_v_;            ///< assembly values, dropped at finalize
  std::vector<int> tri_slot_;       ///< assembly index -> CSR value slot
  std::vector<int> row_ptr_, col_idx_;
  std::vector<T> vals_;
  std::size_t cursor_ = 0;
  bool finalized_ = false;
};

/// Symmetric Ruiz equilibration scales for A. Iterates
/// d_i <- d_i / (rowmax_i * colmax_i)^(1/4) on the implicitly scaled
/// matrix until every row/column max-abs is within 10% of 1 (a few
/// passes in practice). Solving the scaled system (D A D) y = D b and
/// recovering x = D y preserves structural symmetry and brings MNA's
/// mixed unit systems -- 1e-12 gmin next to 1e6 milliohm-path
/// conductances next to +-1 branch incidences -- to O(1) entries,
/// without which ILU-preconditioned Krylov cannot reach tight
/// tolerances in double precision (the dense path's partial pivoting
/// absorbs the spread implicitly). The iteration matters: a one-shot
/// d_i = 1/sqrt(rowmax_i*colmax_i) divides a symmetric row by its full
/// max, leaving the scaled maxima as spread out as the originals.
template <typename T>
inline std::vector<double> equilibration_scales(const CsrView<T>& a) {
  const std::size_t n = static_cast<std::size_t>(a.n);
  std::vector<double> d(n, 1.0);
  std::vector<double> rmax(n), cmax(n);
  for (int pass = 0; pass < 8; ++pass) {
    std::fill(rmax.begin(), rmax.end(), 0.0);
    std::fill(cmax.begin(), cmax.end(), 0.0);
    for (int r = 0; r < a.n; ++r) {
      for (int s = a.row_ptr[r]; s < a.row_ptr[r + 1]; ++s) {
        const std::size_t c = static_cast<std::size_t>(a.col_idx[s]);
        const double m = std::abs(a.vals[s]) * d[static_cast<std::size_t>(r)] * d[c];
        rmax[static_cast<std::size_t>(r)] = std::max(rmax[static_cast<std::size_t>(r)], m);
        cmax[c] = std::max(cmax[c], m);
      }
    }
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = rmax[i] * cmax[i];
      if (p <= 0.0) continue;
      if (std::abs(std::sqrt(p) - 1.0) > 0.1) converged = false;
      d[i] /= std::sqrt(std::sqrt(p));
    }
    if (converged) break;
  }
  return d;
}

/// In-place A -> D A D on the matrix's own value array.
template <typename T>
inline void apply_equilibration(SparseMatrix<T>& A, const std::vector<double>& d) {
  const auto& row_ptr = A.row_ptr();
  const auto& col_idx = A.col_idx();
  auto& vals = A.vals();
  for (int r = 0; r < A.size(); ++r) {
    for (int s = row_ptr[static_cast<std::size_t>(r)]; s < row_ptr[static_cast<std::size_t>(r) + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] *=
          d[static_cast<std::size_t>(r)] * d[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(s)])];
    }
  }
}

/// Diagonal (Jacobi) preconditioner: z = D^-1 r. Rows whose diagonal is
/// absent or zero (MNA branch rows) pass through unscaled.
template <typename T>
class JacobiPreconditioner {
 public:
  explicit JacobiPreconditioner(const CsrView<T>& a) : inv_diag_(static_cast<std::size_t>(a.n), T{1}) {
    for (int r = 0; r < a.n; ++r) {
      for (int i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
        if (a.col_idx[i] == r && std::abs(a.vals[i]) > 1e-300) {
          inv_diag_[static_cast<std::size_t>(r)] = T{1} / a.vals[i];
          break;
        }
      }
    }
  }

  void apply(const std::vector<T>& r, std::vector<T>& z) const {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
  }

 private:
  std::vector<T> inv_diag_;
};

/// ILU(0): incomplete LU on the matrix's own sparsity pattern (which
/// `finalize` guarantees includes the full diagonal). Zero pivots (nodes
/// coupled only through branch elements, where full LU would pivot) are
/// replaced by unit pivots, so construction never fails on a well-posed
/// MNA system; singular systems show up as Krylov non-convergence instead.
template <typename T>
class Ilu0Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrView<T>& a)
      : n_(a.n),
        row_ptr_(a.row_ptr, a.row_ptr + a.n + 1),
        col_idx_(a.col_idx, a.col_idx + a.row_ptr[a.n]),
        luv_(a.vals, a.vals + a.row_ptr[a.n]),
        diag_(static_cast<std::size_t>(a.n), -1) {
    for (int r = 0; r < n_; ++r) {
      for (int i = row_ptr_[static_cast<std::size_t>(r)]; i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i) {
        if (col_idx_[static_cast<std::size_t>(i)] == r) diag_[static_cast<std::size_t>(r)] = i;
      }
      if (diag_[static_cast<std::size_t>(r)] < 0) {
        throw std::runtime_error("singular MNA matrix (floating node?)");
      }
    }
    factor();
  }

  /// z = (LU)^-1 r.
  void apply(const std::vector<T>& r, std::vector<T>& z) const {
    z = r;
    // Forward: L has unit diagonal; strictly-lower entries precede diag_.
    for (int i = 0; i < n_; ++i) {
      T acc = z[static_cast<std::size_t>(i)];
      for (int k = row_ptr_[static_cast<std::size_t>(i)]; k < diag_[static_cast<std::size_t>(i)]; ++k) {
        acc -= luv_[static_cast<std::size_t>(k)] * z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] = acc;
    }
    // Backward.
    for (int i = n_ - 1; i >= 0; --i) {
      T acc = z[static_cast<std::size_t>(i)];
      for (int k = diag_[static_cast<std::size_t>(i)] + 1; k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
        acc -= luv_[static_cast<std::size_t>(k)] * z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] = acc * inv_diag_[static_cast<std::size_t>(i)];
    }
  }

 private:
  void factor() {
    inv_diag_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      for (int ik = row_ptr_[static_cast<std::size_t>(i)]; ik < diag_[static_cast<std::size_t>(i)]; ++ik) {
        const int k = col_idx_[static_cast<std::size_t>(ik)];
        // l(i, k) = a(i, k) / u(k, k), then eliminate along row k's upper part.
        const T lik = luv_[static_cast<std::size_t>(ik)] * inv_diag_[static_cast<std::size_t>(k)];
        luv_[static_cast<std::size_t>(ik)] = lik;
        for (int kj = diag_[static_cast<std::size_t>(k)] + 1; kj < row_ptr_[static_cast<std::size_t>(k) + 1]; ++kj) {
          const int j = col_idx_[static_cast<std::size_t>(kj)];
          const int ij = slot_in_row(i, j);
          if (ij >= 0) luv_[static_cast<std::size_t>(ij)] -= lik * luv_[static_cast<std::size_t>(kj)];
        }
      }
      const T piv = luv_[static_cast<std::size_t>(diag_[static_cast<std::size_t>(i)])];
      // Zero pivots are expected on nonsingular MNA systems: a node touched
      // only by branch elements (inductor/vsource incidence) has a
      // structurally zero diagonal that full LU would pivot around, but
      // ILU(0) cannot reorder. Substituting a unit pivot keeps the
      // preconditioner well defined (locally weaker, still convergent);
      // genuinely singular systems then surface as Krylov non-convergence.
      inv_diag_[static_cast<std::size_t>(i)] =
          std::abs(piv) < 1e-300 ? T{1} : T{1} / piv;
    }
  }

  int slot_in_row(int r, int c) const {
    int lo = row_ptr_[static_cast<std::size_t>(r)], hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (col_idx_[static_cast<std::size_t>(mid)] < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < row_ptr_[static_cast<std::size_t>(r) + 1] && col_idx_[static_cast<std::size_t>(lo)] == c) return lo;
    return -1;
  }

  int n_;
  std::vector<int> row_ptr_, col_idx_;
  std::vector<T> luv_;
  std::vector<int> diag_;
  std::vector<T> inv_diag_;
};

struct KrylovOptions {
  double tol_rel = 1e-12;  ///< convergence: ||r|| <= tol_rel * ||b|| + tol_abs
  double tol_abs = 0.0;
  int max_iters = 0;  ///< 0 = max(200, 4n)
};

struct KrylovStats {
  int iterations = 0;
  double residual = 0.0;  ///< final ||b - A x||_2
  bool converged = false;
};

namespace detail {

template <typename T>
double norm2(const std::vector<T>& v) {
  double s = 0;
  for (const auto& x : v) s += sp_real(sp_conj(x) * x);
  return std::sqrt(s);
}

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  T s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += sp_conj(a[i]) * b[i];
  return s;
}

inline int default_max_iters(int n, int requested) {
  if (requested > 0) return requested;
  return n > 50 ? 4 * n : 200;
}

}  // namespace detail

/// Preconditioned conjugate gradient for SPD systems (thermal / resistive
/// meshes). `x` carries the initial guess in and the solution out.
template <typename T, typename Precond>
KrylovStats cg(const CsrView<T>& a, const std::vector<T>& b, std::vector<T>& x,
               const Precond& m, const KrylovOptions& opts = {}) {
  const int n = a.n;
  const std::size_t un = static_cast<std::size_t>(n);
  if (b.size() != un) throw std::invalid_argument("rhs size mismatch");
  x.resize(un, T{});
  const double bnorm = detail::norm2(b);
  const double tol = opts.tol_rel * bnorm + opts.tol_abs;
  const int max_iters = detail::default_max_iters(n, opts.max_iters);

  std::vector<T> r(un), z(un), p(un), ap(un);
  a.multiply(x.data(), ap.data());
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - ap[i];

  KrylovStats stats;
  stats.residual = detail::norm2(r);
  if (stats.residual <= tol || bnorm == 0.0) {
    stats.converged = true;
    return stats;
  }
  m.apply(r, z);
  p = z;
  T rz = detail::dot(r, z);
  for (int it = 0; it < max_iters; ++it) {
    a.multiply(p.data(), ap.data());
    const T pap = detail::dot(p, ap);
    if (std::abs(pap) < 1e-300) break;  // breakdown (not SPD / singular)
    const T alpha = rz / pap;
    for (std::size_t i = 0; i < un; ++i) x[i] += alpha * p[i];
    for (std::size_t i = 0; i < un; ++i) r[i] -= alpha * ap[i];
    stats.iterations = it + 1;
    stats.residual = detail::norm2(r);
    if (stats.residual <= tol) {
      stats.converged = true;
      break;
    }
    m.apply(r, z);
    const T rz_new = detail::dot(r, z);
    const T beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < un; ++i) p[i] = z[i] + beta * p[i];
  }
  core::instrument::counter_add(core::instrument::Counter::KrylovIterations,
                                static_cast<std::uint64_t>(stats.iterations));
  return stats;
}

/// Preconditioned BiCGSTAB for the general (indefinite, nonsymmetric,
/// complex) MNA case. `x` carries the initial guess in and the solution out.
template <typename T, typename Precond>
KrylovStats bicgstab(const CsrView<T>& a, const std::vector<T>& b, std::vector<T>& x,
                     const Precond& m, const KrylovOptions& opts = {}) {
  const int n = a.n;
  const std::size_t un = static_cast<std::size_t>(n);
  if (b.size() != un) throw std::invalid_argument("rhs size mismatch");
  x.resize(un, T{});
  const double bnorm = detail::norm2(b);
  const double tol = opts.tol_rel * bnorm + opts.tol_abs;
  const int max_iters = detail::default_max_iters(n, opts.max_iters);

  std::vector<T> r(un), rhat(un), p(un, T{}), v(un, T{}), phat(un), shat(un), t(un), s(un);
  a.multiply(x.data(), t.data());
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - t[i];
  rhat = r;

  KrylovStats stats;
  stats.residual = detail::norm2(r);
  if (stats.residual <= tol || bnorm == 0.0) {
    stats.converged = true;
    return stats;
  }

  T rho{1}, alpha{1}, omega{1};
  // `fresh` marks a (re)started Krylov space: the first direction is the
  // plain residual. BiCGSTAB's bi-orthogonality can break down exactly
  // (rho or rhat.v vanishing with r still large) -- classic on small MNA
  // systems -- and the standard cure is restarting against the current
  // residual rather than giving up; max_iters still bounds the total work.
  bool fresh = true;
  for (int it = 0; it < max_iters; ++it) {
    T rho_new = detail::dot(rhat, r);
    if (!fresh &&
        std::abs(rho_new) < 1e-14 * detail::norm2(rhat) * detail::norm2(r)) {
      rhat = r;
      rho_new = detail::dot(rhat, r);
      fresh = true;
    }
    if (std::abs(rho_new) < 1e-300) break;  // residual itself is numerically zero
    if (fresh) {
      p = r;
      fresh = false;
    } else {
      const T beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < un; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;
    m.apply(p, phat);
    a.multiply(phat.data(), v.data());
    const T rhat_v = detail::dot(rhat, v);
    if (std::abs(rhat_v) < 1e-300) {  // breakdown: restart next iteration
      rhat = r;
      fresh = true;
      stats.iterations = it + 1;
      continue;
    }
    alpha = rho / rhat_v;
    for (std::size_t i = 0; i < un; ++i) s[i] = r[i] - alpha * v[i];
    stats.iterations = it + 1;
    if (detail::norm2(s) <= tol) {
      for (std::size_t i = 0; i < un; ++i) x[i] += alpha * phat[i];
      stats.residual = detail::norm2(s);
      stats.converged = true;
      break;
    }
    m.apply(s, shat);
    a.multiply(shat.data(), t.data());
    const T tt = detail::dot(t, t);
    if (std::abs(tt) < 1e-300) break;
    omega = detail::dot(t, s) / tt;
    for (std::size_t i = 0; i < un; ++i) x[i] += alpha * phat[i] + omega * shat[i];
    for (std::size_t i = 0; i < un; ++i) r[i] = s[i] - omega * t[i];
    stats.residual = detail::norm2(r);
    if (stats.residual <= tol) {
      stats.converged = true;
      break;
    }
    if (std::abs(omega) < 1e-300) {  // stabilizer stagnated: restart
      rhat = r;
      fresh = true;
    }
  }
  core::instrument::counter_add(core::instrument::Counter::KrylovIterations,
                                static_cast<std::uint64_t>(stats.iterations));
  return stats;
}

using RealSparseMatrix = SparseMatrix<double>;
using ComplexSparseMatrix = SparseMatrix<std::complex<double>>;

extern template class SparseMatrix<double>;
extern template class SparseMatrix<std::complex<double>>;
extern template class JacobiPreconditioner<double>;
extern template class JacobiPreconditioner<std::complex<double>>;
extern template class Ilu0Preconditioner<double>;
extern template class Ilu0Preconditioner<std::complex<double>>;

}  // namespace gia::circuit
