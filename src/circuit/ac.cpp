#include "circuit/ac.hpp"

#include <cmath>

#include "circuit/dense_lu.hpp"
#include "circuit/mna.hpp"
#include "circuit/sparse.hpp"
#include "core/instrument.hpp"
#include "core/parallel.hpp"
#include "core/solver_backend.hpp"

namespace gia::circuit {

namespace {

using cplx = std::complex<double>;

/// The AC right-hand side is frequency independent (source ac_mag only), so
/// it is built once and shared read-only across the sweep.
std::vector<cplx> ac_rhs(const Circuit& ckt) {
  std::vector<cplx> rhs(static_cast<std::size_t>(ckt.unknown_count()), cplx{});
  const auto& vs = ckt.vsources();
  for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
    rhs[static_cast<std::size_t>(ckt.vsource_current_index(j))] =
        vs[static_cast<std::size_t>(j)].ac_mag;
  }
  for (const auto& is : ckt.isources()) {
    const int rf = node_row(is.from), rt = node_row(is.to);
    if (rf >= 0) rhs[static_cast<std::size_t>(rf)] -= is.ac_mag;
    if (rt >= 0) rhs[static_cast<std::size_t>(rt)] += is.ac_mag;
  }
  return rhs;
}

/// Mutual inductances: M = k * sqrt(L1 L2), precomputed once.
std::vector<double> mutual_values(const Circuit& ckt) {
  const auto& ls = ckt.inductors();
  std::vector<double> mval(ckt.couplings().size());
  for (std::size_t kk = 0; kk < ckt.couplings().size(); ++kk) {
    const auto& k = ckt.couplings()[kk];
    mval[kk] = k.k * std::sqrt(ls[static_cast<std::size_t>(k.l1)].henries *
                               ls[static_cast<std::size_t>(k.l2)].henries);
  }
  return mval;
}

void run_ac_dense(const Circuit& ckt, const std::vector<double>& freqs_hz,
                  const std::vector<NodeId>& probes, AcResult& out) {
  const int m = ckt.unknown_count();
  const auto& ls = ckt.inductors();
  const auto mutual = mutual_values(ckt);
  const auto rhs = ac_rhs(ckt);

  // Static stamp hoisted out of the frequency loop: resistors, source and
  // VCVS constraints, and the inductor branch incidence are all frequency
  // independent. Each point copies this base and adds only the jwC / jwL
  // terms. The stamping order per matrix entry is unchanged (the hoisted
  // groups touch disjoint entries from the per-point ones), so the sweep
  // stays byte-identical to the stamp-everything-per-point code.
  ComplexMatrix base(m);
  stamp_static_complex(ckt, base);
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    stamp_branch_incidence(base, ls[static_cast<std::size_t>(j)].a,
                           ls[static_cast<std::size_t>(j)].b, ckt.inductor_current_index(j),
                           cplx{1.0});
  }

  // Frequency points are independent systems: solve them concurrently. Each
  // point only writes its own out.node_v[...][fi] slot, so the sweep is
  // byte-identical at any thread count.
  core::parallel_for(freqs_hz.size(), [&](std::size_t fi) {
    const double w = 2.0 * 3.14159265358979323846 * freqs_hz[fi];
    const cplx jw(0.0, w);

    ComplexMatrix A = base;
    for (const auto& c : ckt.capacitors()) {
      stamp_conductance(A, c.a, c.b, jw * c.farads);
    }
    for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
      A.add(ckt.inductor_current_index(j), ckt.inductor_current_index(j),
            -jw * ls[static_cast<std::size_t>(j)].henries);
    }
    for (std::size_t kk = 0; kk < ckt.couplings().size(); ++kk) {
      const auto& k = ckt.couplings()[kk];
      A.add(ckt.inductor_current_index(k.l1), ckt.inductor_current_index(k.l2),
            -jw * mutual[kk]);
      A.add(ckt.inductor_current_index(k.l2), ckt.inductor_current_index(k.l1),
            -jw * mutual[kk]);
    }

    LuFactor<cplx> lu(std::move(A));
    const auto x = lu.solve(rhs);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      out.node_v[p][fi] =
          probes[p] == kGround ? cplx{} : x[static_cast<std::size_t>(node_row(probes[p]))];
    }
  });
}

void run_ac_sparse(const Circuit& ckt, const std::vector<double>& freqs_hz,
                   const std::vector<NodeId>& probes, AcResult& out) {
  const int m = ckt.unknown_count();
  const auto& ls = ckt.inductors();
  const auto mutual = mutual_values(ckt);
  const auto rhs = ac_rhs(ckt);

  // Assemble the CSR pattern once: static stamps carry their values, the
  // frequency-dependent entries join the pattern with zero values. Per
  // point only the value array is copied and the jw terms patched in via
  // precomputed slots -- no reassembly, no re-sorting.
  ComplexSparseMatrix S(m);
  stamp_static<cplx>(ckt, S);
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    stamp_branch_incidence(S, ls[static_cast<std::size_t>(j)].a,
                           ls[static_cast<std::size_t>(j)].b, ckt.inductor_current_index(j),
                           cplx{1.0});
  }
  for (const auto& c : ckt.capacitors()) stamp_conductance(S, c.a, c.b, cplx{});
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    S.add(ckt.inductor_current_index(j), ckt.inductor_current_index(j), cplx{});
  }
  for (const auto& k : ckt.couplings()) {
    S.add(ckt.inductor_current_index(k.l1), ckt.inductor_current_index(k.l2), cplx{});
    S.add(ckt.inductor_current_index(k.l2), ckt.inductor_current_index(k.l1), cplx{});
  }
  S.finalize();
  const std::vector<cplx>& static_vals = S.vals();

  // Slot lists for the dynamic terms. stamp_conductance writes (aa, bb, ab,
  // ba); ground rows are skipped exactly as the stamp would.
  struct CapSlots { int aa, bb, ab, ba; double farads; };
  std::vector<CapSlots> cap_slots;
  cap_slots.reserve(ckt.capacitors().size());
  for (const auto& c : ckt.capacitors()) {
    const int ra = node_row(c.a), rb = node_row(c.b);
    CapSlots s{-1, -1, -1, -1, c.farads};
    if (ra >= 0) s.aa = S.slot(ra, ra);
    if (rb >= 0) s.bb = S.slot(rb, rb);
    if (ra >= 0 && rb >= 0) {
      s.ab = S.slot(ra, rb);
      s.ba = S.slot(rb, ra);
    }
    cap_slots.push_back(s);
  }
  struct IndSlot { int diag; double henries; };
  std::vector<IndSlot> ind_slots;
  ind_slots.reserve(ls.size());
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    const int col = ckt.inductor_current_index(j);
    ind_slots.push_back({S.slot(col, col), ls[static_cast<std::size_t>(j)].henries});
  }
  struct CoupSlots { int s12, s21; double mval; };
  std::vector<CoupSlots> coup_slots;
  coup_slots.reserve(ckt.couplings().size());
  for (std::size_t kk = 0; kk < ckt.couplings().size(); ++kk) {
    const auto& k = ckt.couplings()[kk];
    coup_slots.push_back({S.slot(ckt.inductor_current_index(k.l1), ckt.inductor_current_index(k.l2)),
                          S.slot(ckt.inductor_current_index(k.l2), ckt.inductor_current_index(k.l1)),
                          mutual[kk]});
  }

  core::parallel_for(freqs_hz.size(), [&](std::size_t fi) {
    const double w = 2.0 * 3.14159265358979323846 * freqs_hz[fi];
    const cplx jw(0.0, w);

    std::vector<cplx> vals = static_vals;
    for (const auto& s : cap_slots) {
      const cplx g = jw * s.farads;
      if (s.aa >= 0) vals[static_cast<std::size_t>(s.aa)] += g;
      if (s.bb >= 0) vals[static_cast<std::size_t>(s.bb)] += g;
      if (s.ab >= 0) vals[static_cast<std::size_t>(s.ab)] -= g;
      if (s.ba >= 0) vals[static_cast<std::size_t>(s.ba)] -= g;
    }
    for (const auto& s : ind_slots) vals[static_cast<std::size_t>(s.diag)] -= jw * s.henries;
    for (const auto& s : coup_slots) {
      vals[static_cast<std::size_t>(s.s12)] -= jw * s.mval;
      vals[static_cast<std::size_t>(s.s21)] -= jw * s.mval;
    }

    const CsrView<cplx> A = S.view_with(vals.data());
    const Ilu0Preconditioner<cplx> ilu(A);
    std::vector<cplx> x(static_cast<std::size_t>(m), cplx{});
    const auto stats = bicgstab(A, rhs, x, ilu);
    if (!stats.converged) throw std::runtime_error("sparse AC solve failed to converge (singular MNA matrix / floating node?)");
    for (std::size_t p = 0; p < probes.size(); ++p) {
      out.node_v[p][fi] =
          probes[p] == kGround ? cplx{} : x[static_cast<std::size_t>(node_row(probes[p]))];
    }
  });
}

}  // namespace

AcResult run_ac(const Circuit& ckt, const std::vector<double>& freqs_hz,
                const std::vector<NodeId>& probes) {
  GIA_SPAN("circuit/ac");
  core::instrument::counter_add(core::instrument::Counter::AcPoints, freqs_hz.size());
  const int m = ckt.unknown_count();

  AcResult out;
  out.freq_hz = freqs_hz;
  out.node_v.assign(probes.size(), std::vector<cplx>(freqs_hz.size()));

  const bool sparse = core::use_sparse_mna(m);
  if (core::instrument::enabled()) {
    core::instrument::gauge_set("solver_backend.circuit_ac", sparse ? 1.0 : 0.0);
  }
  if (sparse) {
    run_ac_sparse(ckt, freqs_hz, probes, out);
  } else {
    run_ac_dense(ckt, freqs_hz, probes, out);
  }
  return out;
}

std::vector<double> log_freq_grid(double f_start_hz, double f_stop_hz, int points_per_decade) {
  std::vector<double> out;
  const double lg0 = std::log10(f_start_hz), lg1 = std::log10(f_stop_hz);
  const int n = std::max(2, static_cast<int>(std::ceil((lg1 - lg0) * points_per_decade)) + 1);
  for (int i = 0; i < n; ++i) {
    out.push_back(std::pow(10.0, lg0 + (lg1 - lg0) * i / (n - 1)));
  }
  return out;
}

}  // namespace gia::circuit
