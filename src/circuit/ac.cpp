#include "circuit/ac.hpp"

#include <cmath>

#include "circuit/dense_lu.hpp"
#include "circuit/mna.hpp"
#include "core/instrument.hpp"
#include "core/parallel.hpp"

namespace gia::circuit {

AcResult run_ac(const Circuit& ckt, const std::vector<double>& freqs_hz,
                const std::vector<NodeId>& probes) {
  GIA_SPAN("circuit/ac");
  core::instrument::counter_add(core::instrument::Counter::AcPoints, freqs_hz.size());
  using cplx = std::complex<double>;
  const int m = ckt.unknown_count();

  AcResult out;
  out.freq_hz = freqs_hz;
  out.node_v.assign(probes.size(), std::vector<cplx>(freqs_hz.size()));

  // Mutual inductances: precompute M = k * sqrt(L1 L2).
  const auto& ls = ckt.inductors();

  // Frequency points are independent systems: assemble and LU-solve them
  // concurrently. Each point only writes its own out.node_v[...][fi] slot,
  // so the sweep is byte-identical at any thread count.
  core::parallel_for(freqs_hz.size(), [&](std::size_t fi) {
    const double w = 2.0 * 3.14159265358979323846 * freqs_hz[fi];
    const cplx jw(0.0, w);

    ComplexMatrix A(m);
    std::vector<cplx> rhs(static_cast<std::size_t>(m), cplx{});
    stamp_static_complex(ckt, A);

    for (const auto& c : ckt.capacitors()) {
      stamp_conductance(A, c.a, c.b, jw * c.farads);
    }
    for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
      const auto& l = ls[static_cast<std::size_t>(j)];
      const int col = ckt.inductor_current_index(j);
      stamp_branch_incidence(A, l.a, l.b, col, cplx{1.0});
      A.add(col, col, -jw * l.henries);
    }
    for (const auto& k : ckt.couplings()) {
      const double mval = k.k * std::sqrt(ls[static_cast<std::size_t>(k.l1)].henries *
                                          ls[static_cast<std::size_t>(k.l2)].henries);
      A.add(ckt.inductor_current_index(k.l1), ckt.inductor_current_index(k.l2), -jw * mval);
      A.add(ckt.inductor_current_index(k.l2), ckt.inductor_current_index(k.l1), -jw * mval);
    }

    const auto& vs = ckt.vsources();
    for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
      rhs[static_cast<std::size_t>(ckt.vsource_current_index(j))] =
          vs[static_cast<std::size_t>(j)].ac_mag;
    }
    for (const auto& is : ckt.isources()) {
      const int rf = node_row(is.from), rt = node_row(is.to);
      if (rf >= 0) rhs[static_cast<std::size_t>(rf)] -= is.ac_mag;
      if (rt >= 0) rhs[static_cast<std::size_t>(rt)] += is.ac_mag;
    }

    LuFactor<cplx> lu(std::move(A));
    const auto x = lu.solve(rhs);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      out.node_v[p][fi] =
          probes[p] == kGround ? cplx{} : x[static_cast<std::size_t>(node_row(probes[p]))];
    }
  });
  return out;
}

std::vector<double> log_freq_grid(double f_start_hz, double f_stop_hz, int points_per_decade) {
  std::vector<double> out;
  const double lg0 = std::log10(f_start_hz), lg1 = std::log10(f_stop_hz);
  const int n = std::max(2, static_cast<int>(std::ceil((lg1 - lg0) * points_per_decade)) + 1);
  for (int i = 0; i < n; ++i) {
    out.push_back(std::pow(10.0, lg0 + (lg1 - lg0) * i / (n - 1)));
  }
  return out;
}

}  // namespace gia::circuit
