#pragma once

#include <string>
#include <vector>

#include "circuit/stimulus.hpp"

/// \file circuit.hpp
/// Circuit description for the MNA engine: named nodes (node 0 = ground) and
/// linear elements. Supports R, C, L (with mutual coupling), independent V/I
/// sources with arbitrary stimuli, and VCVS (used for receiver buffers).
/// Everything the interconnect studies need -- drivers are modeled as
/// Thevenin sources (edge stimulus behind an output resistance), matching
/// the x128 AIB driver / 47.4 ohm model of Section VII-A.

namespace gia::circuit {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor { NodeId a, b; double ohms; std::string name; };
struct Capacitor { NodeId a, b; double farads; std::string name; };
struct Inductor { NodeId a, b; double henries; std::string name; };
/// Mutual coupling k between two inductors (by index into inductors()).
struct MutualCoupling { int l1, l2; double k; };
/// `ac_mag` is the small-signal magnitude used by AC analysis (SPICE "AC 1"
/// convention); the Stimulus drives DC and transient.
struct VoltageSource { NodeId plus, minus; Stimulus v; std::string name; double ac_mag = 0.0; };
struct CurrentSource { NodeId from, to; Stimulus i; std::string name; double ac_mag = 0.0; };
/// out = gain * (cp - cn), ideal.
struct Vcvs { NodeId out_p, out_n, ctrl_p, ctrl_n; double gain; std::string name; };

class Circuit {
 public:
  /// Create a new node; returns its id. Ground (id 0) exists implicitly.
  NodeId add_node(const std::string& name = {});
  int node_count() const { return node_count_; }
  const std::string& node_name(NodeId n) const;

  int add_resistor(NodeId a, NodeId b, double ohms, std::string name = {});
  int add_capacitor(NodeId a, NodeId b, double farads, std::string name = {});
  int add_inductor(NodeId a, NodeId b, double henries, std::string name = {});
  void add_coupling(int inductor_1, int inductor_2, double k);
  int add_vsource(NodeId plus, NodeId minus, Stimulus v, std::string name = {}, double ac_mag = 0.0);
  int add_isource(NodeId from, NodeId to, Stimulus i, std::string name = {}, double ac_mag = 0.0);
  int add_vcvs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n, double gain,
               std::string name = {});

  const std::vector<Resistor>& resistors() const { return r_; }
  const std::vector<Capacitor>& capacitors() const { return c_; }
  const std::vector<Inductor>& inductors() const { return l_; }
  const std::vector<MutualCoupling>& couplings() const { return k_; }
  const std::vector<VoltageSource>& vsources() const { return v_; }
  const std::vector<CurrentSource>& isources() const { return i_; }
  const std::vector<Vcvs>& vcvs() const { return e_; }

  /// MNA unknown layout: node voltages 1..N-1, then one branch current per
  /// voltage source, inductor, and VCVS (in that order).
  int unknown_count() const;
  int vsource_current_index(int vsrc) const;
  int inductor_current_index(int ind) const;
  int vcvs_current_index(int idx) const;

 private:
  void check_node(NodeId n) const;

  int node_count_ = 1;  // ground
  std::vector<std::string> node_names_{"gnd"};
  std::vector<Resistor> r_;
  std::vector<Capacitor> c_;
  std::vector<Inductor> l_;
  std::vector<MutualCoupling> k_;
  std::vector<VoltageSource> v_;
  std::vector<CurrentSource> i_;
  std::vector<Vcvs> e_;
};

}  // namespace gia::circuit
