#include "circuit/circuit.hpp"

#include <stdexcept>

namespace gia::circuit {

NodeId Circuit::add_node(const std::string& name) {
  node_names_.push_back(name.empty() ? "n" + std::to_string(node_count_) : name);
  return node_count_++;
}

const std::string& Circuit::node_name(NodeId n) const {
  return node_names_.at(static_cast<std::size_t>(n));
}

void Circuit::check_node(NodeId n) const {
  if (n < 0 || n >= node_count_) throw std::out_of_range("bad node id");
}

int Circuit::add_resistor(NodeId a, NodeId b, double ohms, std::string name) {
  check_node(a); check_node(b);
  if (ohms <= 0) throw std::invalid_argument("resistance must be positive: " + name);
  r_.push_back({a, b, ohms, std::move(name)});
  return static_cast<int>(r_.size()) - 1;
}

int Circuit::add_capacitor(NodeId a, NodeId b, double farads, std::string name) {
  check_node(a); check_node(b);
  if (farads < 0) throw std::invalid_argument("capacitance must be >= 0: " + name);
  c_.push_back({a, b, farads, std::move(name)});
  return static_cast<int>(c_.size()) - 1;
}

int Circuit::add_inductor(NodeId a, NodeId b, double henries, std::string name) {
  check_node(a); check_node(b);
  if (henries <= 0) throw std::invalid_argument("inductance must be positive: " + name);
  l_.push_back({a, b, henries, std::move(name)});
  return static_cast<int>(l_.size()) - 1;
}

void Circuit::add_coupling(int inductor_1, int inductor_2, double k) {
  if (inductor_1 < 0 || inductor_1 >= static_cast<int>(l_.size()) || inductor_2 < 0 ||
      inductor_2 >= static_cast<int>(l_.size()) || inductor_1 == inductor_2) {
    throw std::invalid_argument("bad coupling inductor indices");
  }
  if (k <= -1.0 || k >= 1.0) throw std::invalid_argument("|k| must be < 1");
  k_.push_back({inductor_1, inductor_2, k});
}

int Circuit::add_vsource(NodeId plus, NodeId minus, Stimulus v, std::string name, double ac_mag) {
  check_node(plus); check_node(minus);
  v_.push_back({plus, minus, std::move(v), std::move(name), ac_mag});
  return static_cast<int>(v_.size()) - 1;
}

int Circuit::add_isource(NodeId from, NodeId to, Stimulus i, std::string name, double ac_mag) {
  check_node(from); check_node(to);
  i_.push_back({from, to, std::move(i), std::move(name), ac_mag});
  return static_cast<int>(i_.size()) - 1;
}

int Circuit::add_vcvs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n, double gain,
                      std::string name) {
  check_node(out_p); check_node(out_n); check_node(ctrl_p); check_node(ctrl_n);
  e_.push_back({out_p, out_n, ctrl_p, ctrl_n, gain, std::move(name)});
  return static_cast<int>(e_.size()) - 1;
}

int Circuit::unknown_count() const {
  return (node_count_ - 1) + static_cast<int>(v_.size()) + static_cast<int>(l_.size()) +
         static_cast<int>(e_.size());
}

int Circuit::vsource_current_index(int vsrc) const {
  return (node_count_ - 1) + vsrc;
}

int Circuit::inductor_current_index(int ind) const {
  return (node_count_ - 1) + static_cast<int>(v_.size()) + ind;
}

int Circuit::vcvs_current_index(int idx) const {
  return (node_count_ - 1) + static_cast<int>(v_.size()) + static_cast<int>(l_.size()) + idx;
}

}  // namespace gia::circuit
