#include "circuit/mna.hpp"

namespace gia::circuit {

void stamp_static_real(const Circuit& ckt, RealMatrix& A) { stamp_static<double>(ckt, A); }

void stamp_static_complex(const Circuit& ckt, ComplexMatrix& A) {
  stamp_static<std::complex<double>>(ckt, A);
}

}  // namespace gia::circuit
