#include "circuit/mna.hpp"

namespace gia::circuit {
namespace {

template <typename T, typename M>
void stamp_static(const Circuit& ckt, M& A) {
  for (const auto& r : ckt.resistors()) {
    stamp_conductance(A, r.a, r.b, T{1.0 / r.ohms});
  }
  const auto& vs = ckt.vsources();
  for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
    stamp_branch_incidence(A, vs[static_cast<std::size_t>(j)].plus,
                           vs[static_cast<std::size_t>(j)].minus, ckt.vsource_current_index(j),
                           T{1.0});
  }
  const auto& es = ckt.vcvs();
  for (int j = 0; j < static_cast<int>(es.size()); ++j) {
    const auto& e = es[static_cast<std::size_t>(j)];
    const int col = ckt.vcvs_current_index(j);
    // KCL incidence for the output branch + (out_p - out_n) in the row.
    stamp_branch_incidence(A, e.out_p, e.out_n, col, T{1.0});
    // -gain * (ctrl_p - ctrl_n) completes the constraint row.
    const int rp = node_row(e.ctrl_p), rn = node_row(e.ctrl_n);
    if (rp >= 0) A.add(col, rp, T{-e.gain});
    if (rn >= 0) A.add(col, rn, T{e.gain});
  }
}

}  // namespace

void stamp_static_real(const Circuit& ckt, RealMatrix& A) { stamp_static<double>(ckt, A); }

void stamp_static_complex(const Circuit& ckt, ComplexMatrix& A) {
  stamp_static<std::complex<double>>(ckt, A);
}

}  // namespace gia::circuit
