#pragma once

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "core/instrument.hpp"

/// \file dense_lu.hpp
/// Dense LU factorization with partial pivoting, templated on the scalar so
/// the same code serves real (DC/transient) and complex (AC) MNA systems.
/// Circuits in this toolkit are a few hundred unknowns, where dense LU beats
/// sparse bookkeeping comfortably.

namespace gia::circuit {

template <typename T>
struct abs_of {
  static double get(const T& v) { return std::abs(v); }
};

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(int n) : n_(n), a_(static_cast<std::size_t>(n) * n, T{}) {}

  int size() const { return n_; }
  T& at(int r, int c) { return a_[static_cast<std::size_t>(r) * n_ + c]; }
  const T& at(int r, int c) const { return a_[static_cast<std::size_t>(r) * n_ + c]; }
  /// Contiguous row base pointer -- lets the LU inner loops index as row[c]
  /// instead of recomputing r * n + c per element.
  T* row(int r) { return a_.data() + static_cast<std::size_t>(r) * n_; }
  const T* row(int r) const { return a_.data() + static_cast<std::size_t>(r) * n_; }
  void add(int r, int c, T v) { at(r, c) += v; }
  void clear() { a_.assign(a_.size(), T{}); }

 private:
  int n_ = 0;
  std::vector<T> a_;
};

/// LU factorization (in place, partial pivoting). Throws on a singular
/// matrix -- in MNA terms, a floating node or a source loop.
template <typename T>
class LuFactor {
 public:
  explicit LuFactor(DenseMatrix<T> m) : lu_(std::move(m)), piv_(static_cast<std::size_t>(lu_.size())) {
    core::instrument::counter_add(core::instrument::Counter::LuFactorizations);
    factor();
  }

  /// Solve A x = b; returns x.
  std::vector<T> solve(const std::vector<T>& b) const {
    core::instrument::counter_add(core::instrument::Counter::LuSolves);
    const int n = lu_.size();
    if (static_cast<int>(b.size()) != n) throw std::invalid_argument("rhs size mismatch");
    std::vector<T> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(i)])];
    // Forward substitution (L has unit diagonal).
    for (int i = 0; i < n; ++i) {
      const T* ri = lu_.row(i);
      T acc = x[static_cast<std::size_t>(i)];
      for (int j = 0; j < i; ++j) acc -= ri[j] * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = acc;
    }
    // Back substitution, multiplying by the reciprocal pivots cached at
    // factor time instead of dividing per row.
    for (int i = n - 1; i >= 0; --i) {
      const T* ri = lu_.row(i);
      T acc = x[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < n; ++j) acc -= ri[j] * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = acc * inv_diag_[static_cast<std::size_t>(i)];
    }
    return x;
  }

 private:
  void factor() {
    const int n = lu_.size();
    inv_diag_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) piv_[static_cast<std::size_t>(i)] = i;
    for (int k = 0; k < n; ++k) {
      // Pivot: largest magnitude in column k.
      int p = k;
      double best = abs_of<T>::get(lu_.at(k, k));
      for (int r = k + 1; r < n; ++r) {
        const double v = abs_of<T>::get(lu_.at(r, k));
        if (v > best) { best = v; p = r; }
      }
      if (best < 1e-300) throw std::runtime_error("singular MNA matrix (floating node?)");
      if (p != k) {
        T* rk = lu_.row(k);
        T* rp = lu_.row(p);
        for (int c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
        std::swap(piv_[static_cast<std::size_t>(k)], piv_[static_cast<std::size_t>(p)]);
      }
      const T* rk = lu_.row(k);
      // U(k, k) is final after this step, so its reciprocal serves both the
      // elimination below and later solves.
      const T inv_piv = T{1} / rk[k];
      inv_diag_[static_cast<std::size_t>(k)] = inv_piv;
      for (int r = k + 1; r < n; ++r) {
        T* rr = lu_.row(r);
        const T m = rr[k] * inv_piv;
        rr[k] = m;
        for (int c = k + 1; c < n; ++c) rr[c] -= m * rk[c];
      }
    }
  }

  DenseMatrix<T> lu_;
  std::vector<int> piv_;
  std::vector<T> inv_diag_;  ///< 1 / U(i, i), cached during factor()
};

using RealMatrix = DenseMatrix<double>;
using ComplexMatrix = DenseMatrix<std::complex<double>>;

}  // namespace gia::circuit
