#pragma once

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

/// \file dense_lu.hpp
/// Dense LU factorization with partial pivoting, templated on the scalar so
/// the same code serves real (DC/transient) and complex (AC) MNA systems.
/// Circuits in this toolkit are a few hundred unknowns, where dense LU beats
/// sparse bookkeeping comfortably.

namespace gia::circuit {

template <typename T>
struct abs_of {
  static double get(const T& v) { return std::abs(v); }
};

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(int n) : n_(n), a_(static_cast<std::size_t>(n) * n, T{}) {}

  int size() const { return n_; }
  T& at(int r, int c) { return a_[static_cast<std::size_t>(r) * n_ + c]; }
  const T& at(int r, int c) const { return a_[static_cast<std::size_t>(r) * n_ + c]; }
  void add(int r, int c, T v) { at(r, c) += v; }
  void clear() { a_.assign(a_.size(), T{}); }

 private:
  int n_ = 0;
  std::vector<T> a_;
};

/// LU factorization (in place, partial pivoting). Throws on a singular
/// matrix -- in MNA terms, a floating node or a source loop.
template <typename T>
class LuFactor {
 public:
  explicit LuFactor(DenseMatrix<T> m) : lu_(std::move(m)), piv_(static_cast<std::size_t>(lu_.size())) {
    factor();
  }

  /// Solve A x = b; returns x.
  std::vector<T> solve(const std::vector<T>& b) const {
    const int n = lu_.size();
    if (static_cast<int>(b.size()) != n) throw std::invalid_argument("rhs size mismatch");
    std::vector<T> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(i)])];
    // Forward substitution (L has unit diagonal).
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < i; ++j) x[static_cast<std::size_t>(i)] -= lu_.at(i, j) * x[static_cast<std::size_t>(j)];
    }
    // Back substitution.
    for (int i = n - 1; i >= 0; --i) {
      for (int j = i + 1; j < n; ++j) x[static_cast<std::size_t>(i)] -= lu_.at(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] /= lu_.at(i, i);
    }
    return x;
  }

 private:
  void factor() {
    const int n = lu_.size();
    for (int i = 0; i < n; ++i) piv_[static_cast<std::size_t>(i)] = i;
    for (int k = 0; k < n; ++k) {
      // Pivot: largest magnitude in column k.
      int p = k;
      double best = abs_of<T>::get(lu_.at(k, k));
      for (int r = k + 1; r < n; ++r) {
        const double v = abs_of<T>::get(lu_.at(r, k));
        if (v > best) { best = v; p = r; }
      }
      if (best < 1e-300) throw std::runtime_error("singular MNA matrix (floating node?)");
      if (p != k) {
        for (int c = 0; c < n; ++c) std::swap(lu_.at(k, c), lu_.at(p, c));
        std::swap(piv_[static_cast<std::size_t>(k)], piv_[static_cast<std::size_t>(p)]);
      }
      for (int r = k + 1; r < n; ++r) {
        const T m = lu_.at(r, k) / lu_.at(k, k);
        lu_.at(r, k) = m;
        for (int c = k + 1; c < n; ++c) lu_.at(r, c) -= m * lu_.at(k, c);
      }
    }
  }

  DenseMatrix<T> lu_;
  std::vector<int> piv_;
};

using RealMatrix = DenseMatrix<double>;
using ComplexMatrix = DenseMatrix<std::complex<double>>;

}  // namespace gia::circuit
