#include "circuit/transient.hpp"

#include <cmath>
#include <stdexcept>

#include <optional>

#include "circuit/dc.hpp"
#include "circuit/dense_lu.hpp"
#include "circuit/mna.hpp"
#include "circuit/sparse.hpp"
#include "core/instrument.hpp"
#include "core/solver_backend.hpp"

namespace gia::circuit {

namespace {

/// Trapezoidal system assembly, shared verbatim by the dense and sparse
/// backends. Fills `mutual_val` with M = k * sqrt(L1 L2) as a side product.
template <typename M>
void assemble_transient(const Circuit& ckt, double dt, M& A, std::vector<double>& mutual_val) {
  const auto& caps = ckt.capacitors();
  const auto& ls = ckt.inductors();
  stamp_static<double>(ckt, A);
  constexpr double gmin = 1e-12;  // keeps DC-floating nodes solvable
  for (int n = 0; n < ckt.node_count() - 1; ++n) A.add(n, n, gmin);

  for (const auto& c : caps) {
    stamp_conductance(A, c.a, c.b, 2.0 * c.farads / dt);
  }
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    const auto& l = ls[static_cast<std::size_t>(j)];
    const int col = ckt.inductor_current_index(j);
    stamp_branch_incidence(A, l.a, l.b, col, 1.0);
    A.add(col, col, -2.0 * l.henries / dt);
  }
  mutual_val.resize(ckt.couplings().size());
  for (std::size_t kk = 0; kk < ckt.couplings().size(); ++kk) {
    const auto& k = ckt.couplings()[kk];
    const double mval = k.k * std::sqrt(ls[static_cast<std::size_t>(k.l1)].henries *
                                        ls[static_cast<std::size_t>(k.l2)].henries);
    mutual_val[kk] = mval;
    A.add(ckt.inductor_current_index(k.l1), ckt.inductor_current_index(k.l2), -2.0 * mval / dt);
    A.add(ckt.inductor_current_index(k.l2), ckt.inductor_current_index(k.l1), -2.0 * mval / dt);
  }
}

}  // namespace

TransientResult run_transient(const Circuit& ckt, const TransientSpec& spec) {
  GIA_SPAN("circuit/transient");
  if (spec.dt <= 0 || spec.t_stop <= 0) throw std::invalid_argument("bad transient spec");
  const int m = ckt.unknown_count();
  const auto& caps = ckt.capacitors();
  const auto& ls = ckt.inductors();
  const double dt = spec.dt;

  // --- Assemble the (constant) trapezoidal system matrix and set up the
  // backend. Dense factors LU once; sparse finalizes the CSR pattern and
  // factors ILU(0) once, then BiCGSTAB warm-starts each step from the
  // previous state (near-perfect initial guess for smooth waveforms).
  const bool sparse = core::use_sparse_mna(m);
  if (core::instrument::enabled()) {
    core::instrument::gauge_set("solver_backend.circuit_transient", sparse ? 1.0 : 0.0);
  }
  std::vector<double> mutual_val;
  std::optional<LuFactor<double>> lu;
  std::optional<RealSparseMatrix> sp;
  std::optional<Ilu0Preconditioner<double>> ilu;
  if (sparse) {
    sp.emplace(m);
    assemble_transient(ckt, dt, *sp, mutual_val);
    sp->finalize();
    ilu.emplace(sp->view());
  } else {
    RealMatrix A(m);
    assemble_transient(ckt, dt, A, mutual_val);
    lu.emplace(std::move(A));
  }
  auto solve_step = [&](const std::vector<double>& rhs,
                        const std::vector<double>& guess) -> std::vector<double> {
    if (!sparse) return lu->solve(rhs);
    std::vector<double> x = guess;
    const auto stats = bicgstab(sp->view(), rhs, x, *ilu);
    if (!stats.converged) throw std::runtime_error("sparse transient solve failed to converge (singular MNA matrix / floating node?)");
    return x;
  };

  // --- Initial state.
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  if (spec.init_from_dc) {
    x = solve_dc(ckt, 0.0).x;
  }
  auto v_of = [&](const std::vector<double>& vec, NodeId n) {
    return n == kGround ? 0.0 : vec[static_cast<std::size_t>(node_row(n))];
  };

  // Capacitor branch currents (zero at the DC operating point).
  std::vector<double> icap(caps.size(), 0.0);

  const auto n_steps = static_cast<std::size_t>(std::ceil(spec.t_stop / dt));
  core::instrument::counter_add(core::instrument::Counter::TransientSteps, n_steps);
  TransientResult out;
  out.dt = dt;
  std::vector<std::vector<double>> probe_data(spec.probes.size());
  std::vector<std::vector<double>> vsrc_data(spec.record_vsource_currents ? ckt.vsources().size()
                                                                          : 0);
  auto record = [&](const std::vector<double>& state) {
    for (std::size_t p = 0; p < spec.probes.size(); ++p) {
      probe_data[p].push_back(v_of(state, spec.probes[p]));
    }
    for (std::size_t j = 0; j < vsrc_data.size(); ++j) {
      vsrc_data[j].push_back(
          state[static_cast<std::size_t>(ckt.vsource_current_index(static_cast<int>(j)))]);
    }
  };
  record(x);

  std::vector<double> rhs(static_cast<std::size_t>(m));
  for (std::size_t step = 1; step <= n_steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    std::fill(rhs.begin(), rhs.end(), 0.0);

    // Sources at the new time point.
    const auto& vs = ckt.vsources();
    for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
      rhs[static_cast<std::size_t>(ckt.vsource_current_index(j))] =
          vs[static_cast<std::size_t>(j)].v.at(t);
    }
    for (const auto& is : ckt.isources()) {
      const double val = is.i.at(t);
      const int rf = node_row(is.from), rt = node_row(is.to);
      if (rf >= 0) rhs[static_cast<std::size_t>(rf)] -= val;
      if (rt >= 0) rhs[static_cast<std::size_t>(rt)] += val;
    }

    // Capacitor companions: Ieq = geq*v_prev + i_prev, injected b -> a.
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const auto& c = caps[ci];
      const double geq = 2.0 * c.farads / dt;
      const double v_prev = v_of(x, c.a) - v_of(x, c.b);
      const double ieq = geq * v_prev + icap[ci];
      const int ra = node_row(c.a), rb = node_row(c.b);
      if (ra >= 0) rhs[static_cast<std::size_t>(ra)] += ieq;
      if (rb >= 0) rhs[static_cast<std::size_t>(rb)] -= ieq;
    }

    // Inductor branch equations' history terms.
    for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
      const auto& l = ls[static_cast<std::size_t>(j)];
      const int row = ckt.inductor_current_index(j);
      const double v_prev = v_of(x, l.a) - v_of(x, l.b);
      const double i_prev = x[static_cast<std::size_t>(row)];
      rhs[static_cast<std::size_t>(row)] = -v_prev - (2.0 * l.henries / dt) * i_prev;
    }
    for (std::size_t kk = 0; kk < ckt.couplings().size(); ++kk) {
      const auto& k = ckt.couplings()[kk];
      const double i1_prev = x[static_cast<std::size_t>(ckt.inductor_current_index(k.l1))];
      const double i2_prev = x[static_cast<std::size_t>(ckt.inductor_current_index(k.l2))];
      rhs[static_cast<std::size_t>(ckt.inductor_current_index(k.l1))] -=
          (2.0 * mutual_val[kk] / dt) * i2_prev;
      rhs[static_cast<std::size_t>(ckt.inductor_current_index(k.l2))] -=
          (2.0 * mutual_val[kk] / dt) * i1_prev;
    }

    std::vector<double> x_new = solve_step(rhs, x);

    // Update capacitor currents from the trapezoidal companion.
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const auto& c = caps[ci];
      const double geq = 2.0 * c.farads / dt;
      const double v_prev = v_of(x, c.a) - v_of(x, c.b);
      const double v_new = v_of(x_new, c.a) - v_of(x_new, c.b);
      icap[ci] = geq * (v_new - v_prev) - icap[ci];
    }
    x = std::move(x_new);
    record(x);
  }

  for (std::size_t p = 0; p < probe_data.size(); ++p) {
    out.node_v.emplace_back(dt, std::move(probe_data[p]));
  }
  for (std::size_t j = 0; j < vsrc_data.size(); ++j) {
    out.vsrc_i.emplace_back(dt, std::move(vsrc_data[j]));
  }
  return out;
}

}  // namespace gia::circuit
