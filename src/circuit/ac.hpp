#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"

/// \file ac.hpp
/// Small-signal AC sweep. Sources participate with their `ac_mag` (phase 0);
/// all other stimuli are quiesced. The PDN impedance profile of Fig 15 is an
/// AC sweep with a 1 A current source injected at the bump node.

namespace gia::circuit {

struct AcResult {
  std::vector<double> freq_hz;
  /// node_v[p][f] = phasor of probe p at freq_hz[f].
  std::vector<std::vector<std::complex<double>>> node_v;
};

AcResult run_ac(const Circuit& ckt, const std::vector<double>& freqs_hz,
                const std::vector<NodeId>& probes);

/// Logarithmically spaced frequency grid (inclusive endpoints).
std::vector<double> log_freq_grid(double f_start_hz, double f_stop_hz, int points_per_decade);

}  // namespace gia::circuit
