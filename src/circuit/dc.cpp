#include "circuit/dc.hpp"

#include "circuit/dense_lu.hpp"
#include "circuit/mna.hpp"

namespace gia::circuit {

double DcSolution::voltage(NodeId n) const {
  if (n == kGround) return 0.0;
  return x.at(static_cast<std::size_t>(node_row(n)));
}

double DcSolution::vsource_current(int j) const {
  return x.at(static_cast<std::size_t>(ckt->vsource_current_index(j)));
}

double DcSolution::inductor_current(int j) const {
  return x.at(static_cast<std::size_t>(ckt->inductor_current_index(j)));
}

DcSolution solve_dc(const Circuit& ckt, double t) {
  const int m = ckt.unknown_count();
  RealMatrix A(m);
  std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);

  stamp_static_real(ckt, A);
  // gmin keeps nodes that only connect through capacitors solvable at DC,
  // the standard SPICE convergence aid.
  constexpr double gmin = 1e-12;
  for (int n = 0; n < ckt.node_count() - 1; ++n) A.add(n, n, gmin);

  // Inductors are shorts: branch current unknown with constraint va - vb = 0.
  const auto& ls = ckt.inductors();
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    stamp_branch_incidence(A, ls[static_cast<std::size_t>(j)].a, ls[static_cast<std::size_t>(j)].b,
                           ckt.inductor_current_index(j), 1.0);
  }
  // Capacitors are open: no stamp.

  const auto& vs = ckt.vsources();
  for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
    rhs[static_cast<std::size_t>(ckt.vsource_current_index(j))] =
        vs[static_cast<std::size_t>(j)].v.at(t);
  }
  for (const auto& is : ckt.isources()) {
    const double val = is.i.at(t);
    const int rf = node_row(is.from), rt = node_row(is.to);
    if (rf >= 0) rhs[static_cast<std::size_t>(rf)] -= val;
    if (rt >= 0) rhs[static_cast<std::size_t>(rt)] += val;
  }

  LuFactor<double> lu(std::move(A));
  DcSolution out;
  out.x = lu.solve(rhs);
  out.ckt = &ckt;
  return out;
}

}  // namespace gia::circuit
