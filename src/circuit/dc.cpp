#include "circuit/dc.hpp"

#include "circuit/dense_lu.hpp"
#include "circuit/mna.hpp"
#include "circuit/sparse.hpp"
#include "core/instrument.hpp"
#include "core/solver_backend.hpp"

namespace gia::circuit {

double DcSolution::voltage(NodeId n) const {
  if (n == kGround) return 0.0;
  return x.at(static_cast<std::size_t>(node_row(n)));
}

double DcSolution::vsource_current(int j) const {
  return x.at(static_cast<std::size_t>(ckt->vsource_current_index(j)));
}

double DcSolution::inductor_current(int j) const {
  return x.at(static_cast<std::size_t>(ckt->inductor_current_index(j)));
}

namespace {

/// DC system assembly, shared verbatim by the dense and sparse backends
/// (`M` is RealMatrix or RealSparseMatrix -- both stamp via add(r, c, v)).
template <typename M>
void assemble_dc(const Circuit& ckt, M& A) {
  stamp_static<double>(ckt, A);
  // gmin keeps nodes that only connect through capacitors solvable at DC,
  // the standard SPICE convergence aid.
  constexpr double gmin = 1e-12;
  for (int n = 0; n < ckt.node_count() - 1; ++n) A.add(n, n, gmin);

  // Inductors are shorts: branch current unknown with constraint va - vb = 0.
  const auto& ls = ckt.inductors();
  for (int j = 0; j < static_cast<int>(ls.size()); ++j) {
    stamp_branch_incidence(A, ls[static_cast<std::size_t>(j)].a, ls[static_cast<std::size_t>(j)].b,
                           ckt.inductor_current_index(j), 1.0);
  }
  // Capacitors are open: no stamp.
}

std::vector<double> dc_rhs(const Circuit& ckt, double t) {
  std::vector<double> rhs(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const auto& vs = ckt.vsources();
  for (int j = 0; j < static_cast<int>(vs.size()); ++j) {
    rhs[static_cast<std::size_t>(ckt.vsource_current_index(j))] =
        vs[static_cast<std::size_t>(j)].v.at(t);
  }
  for (const auto& is : ckt.isources()) {
    const double val = is.i.at(t);
    const int rf = node_row(is.from), rt = node_row(is.to);
    if (rf >= 0) rhs[static_cast<std::size_t>(rf)] -= val;
    if (rt >= 0) rhs[static_cast<std::size_t>(rt)] += val;
  }
  return rhs;
}

}  // namespace

DcSolution solve_dc(const Circuit& ckt, double t) {
  const int m = ckt.unknown_count();
  const std::vector<double> rhs = dc_rhs(ckt, t);

  DcSolution out;
  out.ckt = &ckt;
  if (core::use_sparse_mna(m)) {
    if (core::instrument::enabled()) core::instrument::gauge_set("solver_backend.circuit_dc", 1.0);
    RealSparseMatrix A(m);
    assemble_dc(ckt, A);
    A.finalize();
    // Equilibrate: the DC system mixes 1e-12 gmin with milliohm-path
    // conductances, far beyond what ILU(0)+BiCGSTAB can solve to tight
    // tolerance unscaled.
    const std::vector<double> d = equilibration_scales(A.view());
    apply_equilibration(A, d);
    std::vector<double> b(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) b[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(i)];
    const Ilu0Preconditioner<double> ilu(A.view());
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    const auto stats = bicgstab(A.view(), b, x, ilu);
    if (stats.converged) {
      for (int i = 0; i < m; ++i) x[static_cast<std::size_t>(i)] *= d[static_cast<std::size_t>(i)];
      out.x = std::move(x);
      return out;
    }
    // ILU(0) cannot pivot, and small saddle chains (e.g. the IVR settling
    // circuit: vsource-R-L-R-L ladders) produce exact-cancellation pivots
    // that only row exchanges cure -- equilibration does not help because
    // the cancellation is structural, not a unit mismatch. Fall back to
    // pivoted dense LU where it is affordable; genuinely singular systems
    // still throw from inside the factorization, and at production scale
    // (where dense would be the very cost this backend exists to avoid)
    // non-convergence stays a loud failure.
    constexpr int kDenseFallbackMaxUnknowns = 2048;
    if (m > kDenseFallbackMaxUnknowns) {
      throw std::runtime_error(
          "sparse DC solve failed to converge (singular MNA matrix / floating node?)");
    }
    RealMatrix Af(m);
    assemble_dc(ckt, Af);
    LuFactor<double> lu(std::move(Af));
    out.x = lu.solve(rhs);
  } else {
    if (core::instrument::enabled()) core::instrument::gauge_set("solver_backend.circuit_dc", 0.0);
    RealMatrix A(m);
    assemble_dc(ckt, A);
    LuFactor<double> lu(std::move(A));
    out.x = lu.solve(rhs);
  }
  return out;
}

}  // namespace gia::circuit
