#pragma once

#include <vector>

#include "circuit/circuit.hpp"

/// \file dc.hpp
/// DC operating point: capacitors open, inductors short. Used standalone
/// (PDN IR drop) and to initialize transients.

namespace gia::circuit {

struct DcSolution {
  std::vector<double> x;  ///< full unknown vector
  const Circuit* ckt = nullptr;

  double voltage(NodeId n) const;
  double vsource_current(int j) const;
  double inductor_current(int j) const;
};

/// Solve the operating point with every stimulus evaluated at time `t`.
DcSolution solve_dc(const Circuit& ckt, double t = 0.0);

}  // namespace gia::circuit
