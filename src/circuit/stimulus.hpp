#pragma once

#include <vector>

/// \file stimulus.hpp
/// Time-domain source descriptions: DC, trapezoidal pulse trains, piecewise
/// linear, and bit streams (for PRBS eye-diagram runs). Evaluated lazily at
/// each transient timestep.

namespace gia::circuit {

class Stimulus {
 public:
  /// Constant level.
  static Stimulus dc(double level);
  /// SPICE-style periodic pulse. `period <= 0` means a single pulse.
  static Stimulus pulse(double v0, double v1, double delay, double rise, double fall,
                        double width, double period);
  /// Piecewise-linear: (time, value) points, held constant outside.
  static Stimulus pwl(std::vector<std::pair<double, double>> points);
  /// NRZ bit stream with linear edges: bit i occupies [i*bit_time, (i+1)*bit_time).
  static Stimulus bits(std::vector<int> stream, double bit_time, double edge_time, double v0,
                       double v1);

  double at(double t) const;
  double dc_level() const { return at(0.0); }

 private:
  enum class Kind { Dc, Pulse, Pwl, Bits };
  Kind kind_ = Kind::Dc;
  double v0_ = 0, v1_ = 0, delay_ = 0, rise_ = 0, fall_ = 0, width_ = 0, period_ = 0;
  double bit_time_ = 0, edge_ = 0;
  std::vector<std::pair<double, double>> pts_;
  std::vector<int> bits_;
};

}  // namespace gia::circuit
