#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gia::circuit {

double Waveform::at(double t) const {
  if (s_.empty()) return 0.0;
  const double idx = t / dt_;
  if (idx <= 0) return s_.front();
  if (idx >= static_cast<double>(s_.size() - 1)) return s_.back();
  const auto i = static_cast<std::size_t>(idx);
  const double f = idx - static_cast<double>(i);
  return s_[i] * (1.0 - f) + s_[i + 1] * f;
}

double Waveform::min() const { return s_.empty() ? 0.0 : *std::min_element(s_.begin(), s_.end()); }
double Waveform::max() const { return s_.empty() ? 0.0 : *std::max_element(s_.begin(), s_.end()); }

double Waveform::mean() const {
  if (s_.empty()) return 0.0;
  double acc = 0;
  for (double v : s_) acc += v;
  return acc / static_cast<double>(s_.size());
}

std::optional<double> Waveform::crossing(double level, double t_from, int direction) const {
  const auto all = crossings(level, t_from, direction);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::vector<double> Waveform::crossings(double level, double t_from, int direction) const {
  std::vector<double> out;
  const auto start = static_cast<std::size_t>(std::max(0.0, std::ceil(t_from / dt_)));
  for (std::size_t i = start + 1; i < s_.size(); ++i) {
    const double a = s_[i - 1], b = s_[i];
    const bool rising = a < level && b >= level;
    const bool falling = a > level && b <= level;
    if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
      const double f = (level - a) / (b - a);
      out.push_back((static_cast<double>(i - 1) + f) * dt_);
    }
  }
  return out;
}

std::optional<double> Waveform::settling_time(double target, double tol) const {
  if (s_.empty()) return std::nullopt;
  // Scan backwards for the last sample outside the band.
  for (std::size_t i = s_.size(); i > 0; --i) {
    if (std::abs(s_[i - 1] - target) > tol) {
      if (i == s_.size()) return std::nullopt;  // never settles
      return static_cast<double>(i) * dt_;
    }
  }
  return 0.0;  // always inside the band
}

std::optional<double> propagation_delay(const Waveform& in, const Waveform& out, double v_low,
                                        double v_high, double t_from, int direction) {
  const double mid = 0.5 * (v_low + v_high);
  const auto t_in = in.crossing(mid, t_from, direction);
  if (!t_in) return std::nullopt;
  const auto t_out = out.crossing(mid, *t_in, direction);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

double average_power(const Waveform& v, const Waveform& i) {
  if (v.size() != i.size() || v.empty()) throw std::invalid_argument("waveform size mismatch");
  double acc = 0;
  for (std::size_t k = 0; k < v.size(); ++k) acc += v[k] * i[k];
  return acc / static_cast<double>(v.size());
}

}  // namespace gia::circuit
