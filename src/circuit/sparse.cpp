#include "circuit/sparse.hpp"

// Explicit instantiations for the two scalars the MNA engines use, so the
// CSR assembly and preconditioner code is compiled once instead of in every
// translation unit that stamps a matrix.

namespace gia::circuit {

template class SparseMatrix<double>;
template class SparseMatrix<std::complex<double>>;
template class JacobiPreconditioner<double>;
template class JacobiPreconditioner<std::complex<double>>;
template class Ilu0Preconditioner<double>;
template class Ilu0Preconditioner<std::complex<double>>;

}  // namespace gia::circuit
