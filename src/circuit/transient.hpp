#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/waveform.hpp"

/// \file transient.hpp
/// Fixed-step trapezoidal transient analysis. The MNA matrix is factored
/// once (the step size is constant), so each timestep is a pair of
/// triangular solves -- fast enough for the multi-thousand-step PRBS eye
/// runs of Section VII.

namespace gia::circuit {

struct TransientSpec {
  double dt = 1e-12;      ///< timestep [s]
  double t_stop = 1e-9;   ///< end time [s]
  std::vector<NodeId> probes;        ///< node voltages to record
  bool record_vsource_currents = false;
  /// Start from the DC operating point at t=0 (otherwise all-zero state).
  bool init_from_dc = true;
};

struct TransientResult {
  double dt = 0;
  std::vector<Waveform> node_v;  ///< parallel to spec.probes
  std::vector<Waveform> vsrc_i;  ///< per voltage source (when recorded)
};

TransientResult run_transient(const Circuit& ckt, const TransientSpec& spec);

}  // namespace gia::circuit
