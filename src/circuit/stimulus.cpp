#include "circuit/stimulus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gia::circuit {

Stimulus Stimulus::dc(double level) {
  Stimulus s;
  s.kind_ = Kind::Dc;
  s.v0_ = level;
  return s;
}

Stimulus Stimulus::pulse(double v0, double v1, double delay, double rise, double fall,
                         double width, double period) {
  Stimulus s;
  s.kind_ = Kind::Pulse;
  s.v0_ = v0; s.v1_ = v1; s.delay_ = delay;
  s.rise_ = std::max(rise, 1e-15);
  s.fall_ = std::max(fall, 1e-15);
  s.width_ = width; s.period_ = period;
  return s;
}

Stimulus Stimulus::pwl(std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("pwl needs points");
  Stimulus s;
  s.kind_ = Kind::Pwl;
  s.pts_ = std::move(points);
  return s;
}

Stimulus Stimulus::bits(std::vector<int> stream, double bit_time, double edge_time, double v0,
                        double v1) {
  if (stream.empty()) throw std::invalid_argument("bit stream empty");
  if (edge_time >= bit_time) throw std::invalid_argument("edge time must be < bit time");
  Stimulus s;
  s.kind_ = Kind::Bits;
  s.bits_ = std::move(stream);
  s.bit_time_ = bit_time;
  s.edge_ = std::max(edge_time, 1e-15);
  s.v0_ = v0; s.v1_ = v1;
  return s;
}

double Stimulus::at(double t) const {
  switch (kind_) {
    case Kind::Dc:
      return v0_;
    case Kind::Pulse: {
      if (t < delay_) return v0_;
      double tt = t - delay_;
      if (period_ > 0) tt = std::fmod(tt, period_);
      if (tt < rise_) return v0_ + (v1_ - v0_) * (tt / rise_);
      tt -= rise_;
      if (tt < width_) return v1_;
      tt -= width_;
      if (tt < fall_) return v1_ + (v0_ - v1_) * (tt / fall_);
      return v0_;
    }
    case Kind::Pwl: {
      if (t <= pts_.front().first) return pts_.front().second;
      if (t >= pts_.back().first) return pts_.back().second;
      auto it = std::upper_bound(pts_.begin(), pts_.end(), t,
                                 [](double v, const auto& p) { return v < p.first; });
      const auto& hi = *it;
      const auto& lo = *(it - 1);
      const double f = (t - lo.first) / (hi.first - lo.first);
      return lo.second + f * (hi.second - lo.second);
    }
    case Kind::Bits: {
      const auto n = static_cast<long>(bits_.size());
      const long idx = std::clamp(static_cast<long>(std::floor(t / bit_time_)), 0L, n - 1);
      const double lvl = bits_[static_cast<std::size_t>(idx)] ? v1_ : v0_;
      const double prev_lvl =
          (idx == 0) ? lvl : (bits_[static_cast<std::size_t>(idx - 1)] ? v1_ : v0_);
      const double t_in = t - static_cast<double>(idx) * bit_time_;
      if (t_in < edge_ && prev_lvl != lvl) {
        return prev_lvl + (lvl - prev_lvl) * (t_in / edge_);
      }
      return lvl;
    }
  }
  return 0.0;
}

}  // namespace gia::circuit
