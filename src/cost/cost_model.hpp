#pragma once

#include "interposer/design.hpp"
#include "tech/technology.hpp"

/// \file cost_model.hpp
/// Manufacturing cost model for the six integration options. The paper's
/// recurring claim -- glass is "a cost-effective solution for 3D chiplet
/// stacking" while Silicon 3D "suffers from ... manufacturing costs" -- is
/// qualitative; this module quantifies it with a standard panel/wafer cost
/// + defect-density yield model:
///
///   substrate $/unit = processed-area cost x layer count / substrate yield
///   chiplet   $/unit = wafer cost / (gross dies x die yield)
///   assembly  $/unit = per-die attach cost / assembly yield^dies
///
/// Parameters are industry-typical figures (declared below so users can
/// recalibrate); what the model is FOR is the ratios between technologies,
/// which are driven by structural facts: glass processes 510x515 mm panels
/// (~6x the area of a 300 mm wafer) in low-cost build-up steps, silicon
/// interposers need BEOL lithography plus TSV reveal, and Silicon 3D adds
/// wafer thinning/handling on every ACTIVE die plus a yield hit per stacked
/// bond.

namespace gia::cost {

struct CostParameters {
  // --- substrate processing, $ per mm^2 per metal layer.
  double glass_panel_cost_per_mm2_layer = 0.0006;   ///< panel-level SAP RDL
  double silicon_cost_per_mm2_layer = 0.0042;       ///< 300mm BEOL damascene
  double organic_cost_per_mm2_layer = 0.0004;       ///< laminate build-up
  /// Through-via process adder, $ per mm^2 of substrate.
  double tgv_adder_per_mm2 = 0.0012;                ///< laser TGV + fill
  double tsv_adder_per_mm2 = 0.0090;                ///< etch, liner, reveal
  double pth_adder_per_mm2 = 0.0002;                ///< mechanical drill
  /// Glass cavity formation (etch/laser) per embedded die.
  double cavity_cost_per_die = 0.010;
  /// Wafer thinning + carrier handling, per thinned ACTIVE die (Si 3D).
  double thinning_cost_per_die = 0.055;

  // --- chiplet silicon.
  double wafer_cost_28nm = 3000.0;    ///< $ per 300 mm wafer
  double wafer_area_mm2 = 70686.0;    ///< pi * 150^2
  double defect_density_per_cm2 = 0.25;  ///< 28nm-class D0
  /// Substrate-process defect density (coarse features).
  double substrate_d0_per_cm2 = 0.05;

  // --- assembly.
  double attach_cost_per_die = 0.02;        ///< flip-chip bond + underfill
  double bond_yield_25d = 0.995;            ///< per die, interposer attach
  double bond_yield_3d = 0.985;             ///< per die, stacked bond
};

struct CostBreakdown {
  double substrate = 0;   ///< interposer (or base wafer) processing
  double chiplets = 0;    ///< four dies of known-good silicon
  double assembly = 0;    ///< attach + stacking, yield-adjusted
  double process_adders = 0;  ///< TGV/TSV/cavity/thinning
  double total() const { return substrate + chiplets + assembly + process_adders; }
  double substrate_yield = 1.0;
  double assembly_yield = 1.0;
};

/// Poisson yield of an area [mm^2] at defect density [1/cm^2].
double poisson_yield(double area_mm2, double d0_per_cm2);

/// Cost of one assembled system on the given designed interposer.
CostBreakdown system_cost(const interposer::InterposerDesign& design,
                          const CostParameters& params = {});

}  // namespace gia::cost
