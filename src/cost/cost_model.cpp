#include "cost/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace gia::cost {

using tech::IntegrationStyle;
using tech::TechnologyKind;

double poisson_yield(double area_mm2, double d0_per_cm2) {
  if (area_mm2 < 0 || d0_per_cm2 < 0) throw std::invalid_argument("bad yield inputs");
  return std::exp(-area_mm2 * 1e-2 * d0_per_cm2);
}

namespace {

/// Known-good-die cost: wafer cost amortized over yielded dies.
double die_cost(double die_area_mm2, const CostParameters& p) {
  const double gross = p.wafer_cost_28nm == 0 ? 0 : p.wafer_area_mm2 / die_area_mm2;
  const double y = poisson_yield(die_area_mm2, p.defect_density_per_cm2);
  return p.wafer_cost_28nm / (gross * y);
}

}  // namespace

CostBreakdown system_cost(const interposer::InterposerDesign& design,
                          const CostParameters& p) {
  const auto& tech = design.technology;
  CostBreakdown out;

  // --- Four known-good chiplets.
  const double logic_area = design.plans.logic.area_mm2();
  const double mem_area = design.plans.memory.area_mm2();
  out.chiplets = 2.0 * (die_cost(logic_area, p) + die_cost(mem_area, p));

  // --- Substrate.
  const double area = design.area_mm2();
  double per_layer = p.organic_cost_per_mm2_layer;
  double via_adder = p.pth_adder_per_mm2;
  switch (tech.kind) {
    case TechnologyKind::Glass25D:
    case TechnologyKind::Glass3D:
      per_layer = p.glass_panel_cost_per_mm2_layer;
      via_adder = p.tgv_adder_per_mm2;
      break;
    case TechnologyKind::Silicon25D:
      per_layer = p.silicon_cost_per_mm2_layer;
      via_adder = p.tsv_adder_per_mm2;
      break;
    case TechnologyKind::Silicon3D:
      // No interposer: the "substrate" is the bottom die, already counted.
      per_layer = 0;
      via_adder = p.tsv_adder_per_mm2;  // mini-TSVs processed into every die
      break;
    case TechnologyKind::Shinko:
    case TechnologyKind::APX:
    case TechnologyKind::Monolithic2D:
      break;
  }
  const int layers = std::max(tech.rules.metal_layers, 0);
  // Substrate-level yield shrinks with area and layer count.
  out.substrate_yield =
      poisson_yield(area * std::max(1, layers) * 0.25, p.substrate_d0_per_cm2);
  out.substrate = per_layer * area * layers / out.substrate_yield;

  // --- Process adders.
  out.process_adders = via_adder * area;
  int embedded = 0, stacked = 0;
  for (const auto& die : design.floorplan.dies) {
    embedded += die.embedded ? 1 : 0;
  }
  if (tech.integration == IntegrationStyle::TsvStack) stacked = 4;
  out.process_adders += embedded * p.cavity_cost_per_die;
  // Si 3D thins every die except the top one; TSV processing is applied to
  // the active wafers too (the via_adder above covers the base only).
  if (stacked > 0) {
    out.process_adders += (stacked - 1) * p.thinning_cost_per_die;
    out.process_adders += p.tsv_adder_per_mm2 * design.area_mm2() * (stacked - 1);
  }

  // --- Assembly.
  const int dies = static_cast<int>(design.floorplan.dies.size());
  const double bond_y =
      tech.is_3d() ? p.bond_yield_3d : p.bond_yield_25d;
  out.assembly_yield = std::pow(bond_y, dies);
  out.assembly = dies * p.attach_cost_per_die / out.assembly_yield;
  // A failed bond scraps the known-good dies already attached: amortize the
  // expected loss into assembly.
  out.assembly += (1.0 - out.assembly_yield) * out.chiplets;
  return out;
}

}  // namespace gia::cost
