#pragma once

#include "geometry/point.hpp"

/// \file predicates.hpp
/// Exact geometric predicates in the style of Shewchuk's adaptive-precision
/// arithmetic: `orient2d` evaluates the sign of the 2x2 orientation
/// determinant with a floating-point filter and falls back to an exact
/// expansion-arithmetic evaluation only when the filter cannot certify the
/// sign. Everything above this file (hulls, clipping, visibility routing)
/// branches on these signs, so degenerate inputs -- collinear triples,
/// touching segments, shared endpoints -- classify deterministically instead
/// of depending on rounding luck.

namespace gia::geometry {

/// Sign of the orientation determinant of the triangle (a, b, c):
/// positive when c lies to the left of the directed line a->b
/// (counter-clockwise), negative to the right, exactly zero when collinear.
/// The magnitude is twice the signed triangle area (approximate in the
/// filtered fast path, exact-sign always).
double orient2d(Point a, Point b, Point c);

/// Discrete orientation from the exact-sign determinant.
enum class Orientation { Clockwise = -1, Collinear = 0, CounterClockwise = 1 };
Orientation orientation(Point a, Point b, Point c);

/// Is p on the closed segment [a, b]? (Exact: collinearity via orient2d
/// plus a bounding-box test.)
bool on_segment(Point a, Point b, Point p);

/// How two closed segments [a,b] and [c,d] meet.
enum class SegmentCross {
  None,     ///< disjoint
  Proper,   ///< interiors cross at a single point
  Touch,    ///< meet at exactly one point involving an endpoint
  Overlap   ///< collinear with a shared sub-segment of positive length
};
SegmentCross segment_intersection(Point a, Point b, Point c, Point d);

/// True when the segments share at least one point (any SegmentCross other
/// than None).
bool segments_intersect(Point a, Point b, Point c, Point d);

/// Intersection point of two properly crossing segments. Preconditions:
/// segment_intersection(...) == Proper (the denominator is then nonzero).
Point segment_cross_point(Point a, Point b, Point c, Point d);

/// Euclidean distance from p to the closed segment [a, b].
double point_segment_distance(Point p, Point a, Point b);

/// Euclidean distance between two closed segments (0 when they intersect).
double segment_segment_distance(Point a, Point b, Point c, Point d);

}  // namespace gia::geometry
