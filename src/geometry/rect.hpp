#pragma once

#include <algorithm>

#include "geometry/point.hpp"

/// \file rect.hpp
/// Axis-aligned rectangle in micrometers. Used for die outlines, interposer
/// footprints, routing regions and thermal tiles.

namespace gia::geometry {

struct Rect {
  double lx = 0.0, ly = 0.0;  ///< lower-left corner [um]
  double ux = 0.0, uy = 0.0;  ///< upper-right corner [um]

  static Rect from_center(Point c, double width, double height) {
    return {c.x - width / 2, c.y - height / 2, c.x + width / 2, c.y + height / 2};
  }

  double width() const { return ux - lx; }
  double height() const { return uy - ly; }
  double area() const { return width() * height(); }
  Point center() const { return {(lx + ux) / 2, (ly + uy) / 2}; }
  bool valid() const { return ux >= lx && uy >= ly; }

  bool contains(Point p) const { return p.x >= lx && p.x <= ux && p.y >= ly && p.y <= uy; }
  bool contains(const Rect& r) const {
    return r.lx >= lx && r.ux <= ux && r.ly >= ly && r.uy <= uy;
  }
  bool overlaps(const Rect& r) const {
    return !(r.lx >= ux || r.ux <= lx || r.ly >= uy || r.uy <= ly);
  }

  /// Smallest rectangle covering both. Either may be degenerate.
  Rect united(const Rect& r) const;
  /// Intersection; degenerate (zero-area) rect when disjoint.
  Rect intersected(const Rect& r) const;
  /// Rectangle grown by `margin` on all four sides (shrunk when negative).
  Rect inflated(double margin) const;
};

/// Half-perimeter wirelength of the bounding box of a point set — the
/// standard placement wirelength estimate.
double hpwl(const Point* pts, int n);

}  // namespace gia::geometry
