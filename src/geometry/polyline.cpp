#include "geometry/polyline.hpp"

#include <algorithm>
#include <cmath>

namespace gia::geometry {

double Polyline::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    total += euclidean_distance(pts_[i - 1].p, pts_[i].p);
  }
  return total;
}

int Polyline::via_count() const {
  int vias = 0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    vias += std::abs(pts_[i].layer - pts_[i - 1].layer);
  }
  return vias;
}

std::pair<int, int> Polyline::layer_span() const {
  if (pts_.empty()) return {0, 0};
  int lo = pts_.front().layer, hi = lo;
  for (const auto& pp : pts_) {
    lo = std::min(lo, pp.layer);
    hi = std::max(hi, pp.layer);
  }
  return {lo, hi};
}

}  // namespace gia::geometry
