#include "geometry/predicates.hpp"

#include <algorithm>
#include <cmath>

namespace gia::geometry {

namespace {

// --- Adaptive-precision scaffolding (Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates"). Doubles
// are split into non-overlapping expansions whose exact sum is the true
// value; the orientation determinant is evaluated in stages, each certified
// by an error bound, so the exact tail only runs on (near-)degenerate
// inputs.

constexpr double kEps = 1.1102230246251565e-16;  // 2^-53: half a double ulp
constexpr double kSplitter = 134217729.0;        // 2^27 + 1
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEps) * kEps;
constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEps) * kEps;
constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEps) * kEps * kEps;
constexpr double kResultErrBound = (3.0 + 8.0 * kEps) * kEps;

inline void fast_two_sum(double a, double b, double& x, double& y) {
  // Requires |a| >= |b|.
  x = a + b;
  y = b - (x - a);
}

inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  const double avirt = x - bvirt;
  y = (a - avirt) + (b - bvirt);
}

inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  y = (a - avirt) + (bvirt - b);
}

inline double two_diff_tail(double a, double b, double x) {
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  return (a - avirt) + (bvirt - b);
}

inline void split(double a, double& hi, double& lo) {
  const double c = kSplitter * a;
  const double abig = c - a;
  hi = c - abig;
  lo = a - hi;
}

inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  double ahi, alo, bhi, blo;
  split(a, ahi, alo);
  split(b, bhi, blo);
  const double err1 = x - (ahi * bhi);
  const double err2 = err1 - (alo * bhi);
  const double err3 = err2 - (ahi * blo);
  y = (alo * blo) - err3;
}

inline void two_one_diff(double a1, double a0, double b, double& x2, double& x1, double& x0) {
  double i;
  two_diff(a0, b, i, x0);
  two_sum(a1, i, x2, x1);
}

/// (a1 + a0) - (b1 + b0) as the 4-component expansion x3..x0.
inline void two_two_diff(double a1, double a0, double b1, double b0, double& x3, double& x2,
                         double& x1, double& x0) {
  double j, t;
  two_one_diff(a1, a0, b0, j, t, x0);
  two_one_diff(j, t, b1, x3, x2, x1);
}

/// Sum of expansions e + f into h, eliminating zero components. Returns the
/// length of h (h must hold elen + flen doubles).
int fast_expansion_sum_zeroelim(int elen, const double* e, int flen, const double* f, double* h) {
  int eindex = 0, findex = 0, hindex = 0;
  auto take = [&]() {
    if (eindex < elen &&
        (findex >= flen || ((f[findex] > e[eindex]) == (f[findex] > -e[eindex])))) {
      return e[eindex++];
    }
    return f[findex++];
  };
  double q = take(), qnew, hh;
  bool first = true;
  while (eindex < elen || findex < flen) {
    const double now = take();
    if (first) {
      fast_two_sum(now, q, qnew, hh);  // |now| >= |q|: components merge in magnitude order
      first = false;
    } else {
      two_sum(q, now, qnew, hh);
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

double estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; ++i) q += e[i];
  return q;
}

double orient2d_adapt(Point pa, Point pb, Point pc, double detsum) {
  const double acx = pa.x - pc.x;
  const double bcx = pb.x - pc.x;
  const double acy = pa.y - pc.y;
  const double bcy = pb.y - pc.y;

  double detleft, detlefttail, detright, detrighttail;
  two_product(acx, bcy, detleft, detlefttail);
  two_product(acy, bcx, detright, detrighttail);

  double B[4];
  two_two_diff(detleft, detlefttail, detright, detrighttail, B[3], B[2], B[1], B[0]);

  double det = estimate(4, B);
  double errbound = kCcwErrBoundB * detsum;
  if (det >= errbound || -det >= errbound) return det;

  const double acxtail = two_diff_tail(pa.x, pc.x, acx);
  const double bcxtail = two_diff_tail(pb.x, pc.x, bcx);
  const double acytail = two_diff_tail(pa.y, pc.y, acy);
  const double bcytail = two_diff_tail(pb.y, pc.y, bcy);
  if (acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0) return det;

  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::abs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if (det >= errbound || -det >= errbound) return det;

  double s1, s0, t1, t0, u[4];
  double C1[8], C2[12], D[16];

  two_product(acxtail, bcy, s1, s0);
  two_product(acytail, bcx, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  const int c1len = fast_expansion_sum_zeroelim(4, B, 4, u, C1);

  two_product(acx, bcytail, s1, s0);
  two_product(acy, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  const int c2len = fast_expansion_sum_zeroelim(c1len, C1, 4, u, C2);

  two_product(acxtail, bcytail, s1, s0);
  two_product(acytail, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  const int dlen = fast_expansion_sum_zeroelim(c2len, C2, 4, u, D);

  return D[dlen - 1];
}

}  // namespace

double orient2d(Point pa, Point pb, Point pc) {
  const double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  const double detright = (pa.y - pc.y) * (pb.x - pc.x);
  const double det = detleft - detright;
  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double errbound = kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return orient2d_adapt(pa, pb, pc, detsum);
}

Orientation orientation(Point a, Point b, Point c) {
  const double d = orient2d(a, b, c);
  if (d > 0.0) return Orientation::CounterClockwise;
  if (d < 0.0) return Orientation::Clockwise;
  return Orientation::Collinear;
}

bool on_segment(Point a, Point b, Point p) {
  if (orientation(a, b, p) != Orientation::Collinear) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

SegmentCross segment_intersection(Point a, Point b, Point c, Point d) {
  const Orientation o1 = orientation(a, b, c);
  const Orientation o2 = orientation(a, b, d);
  const Orientation o3 = orientation(c, d, a);
  const Orientation o4 = orientation(c, d, b);

  if (o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear &&
      o3 != Orientation::Collinear && o4 != Orientation::Collinear) {
    return SegmentCross::Proper;
  }

  const bool c_on = on_segment(a, b, c);
  const bool d_on = on_segment(a, b, d);
  const bool a_on = on_segment(c, d, a);
  const bool b_on = on_segment(c, d, b);
  if (!c_on && !d_on && !a_on && !b_on) return SegmentCross::None;

  if (o1 == Orientation::Collinear && o2 == Orientation::Collinear) {
    // Collinear segments: overlap when the shared span has positive length.
    const bool vertical = std::abs(b.x - a.x) < std::abs(b.y - a.y);
    auto coord = [vertical](Point p) { return vertical ? p.y : p.x; };
    const double lo = std::max(std::min(coord(a), coord(b)), std::min(coord(c), coord(d)));
    const double hi = std::min(std::max(coord(a), coord(b)), std::max(coord(c), coord(d)));
    return hi > lo ? SegmentCross::Overlap : SegmentCross::Touch;
  }
  return SegmentCross::Touch;
}

bool segments_intersect(Point a, Point b, Point c, Point d) {
  return segment_intersection(a, b, c, d) != SegmentCross::None;
}

Point segment_cross_point(Point a, Point b, Point c, Point d) {
  // t along [a,b] from the two signed areas; a Proper crossing guarantees a
  // nonzero denominator.
  const double num = orient2d(c, d, a);
  const double den = num - orient2d(c, d, b);
  const double t = num / den;
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

double point_segment_distance(Point p, Point a, Point b) {
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return std::hypot(p.x - a.x, p.y - a.y);
  const double t = std::clamp(((p.x - a.x) * dx + (p.y - a.y) * dy) / len2, 0.0, 1.0);
  return std::hypot(p.x - (a.x + t * dx), p.y - (a.y + t * dy));
}

double segment_segment_distance(Point a, Point b, Point c, Point d) {
  if (segments_intersect(a, b, c, d)) return 0.0;
  return std::min(std::min(point_segment_distance(a, c, d), point_segment_distance(b, c, d)),
                  std::min(point_segment_distance(c, a, b), point_segment_distance(d, a, b)));
}

}  // namespace gia::geometry
