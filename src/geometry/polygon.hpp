#pragma once

#include <vector>

#include "geometry/point.hpp"
#include "geometry/predicates.hpp"
#include "geometry/rect.hpp"

/// \file polygon.hpp
/// Simple-polygon operations on top of the exact predicates: signed area,
/// point containment with an explicit boundary class, collinear-robust
/// convex hulls (Andrew monotone chain), Sutherland-Hodgman clipping
/// against convex windows with a triangulation-based general boolean path,
/// and miter offsetting of convex outlines for keep-out margins. Degenerate
/// inputs (zero-area polygons, collinear hulls, clips to nothing) produce
/// well-defined results; operations whose result would be ill-defined
/// (offsetting a non-convex outline, clipping against a non-convex window)
/// reject loudly with std::invalid_argument.

namespace gia::geometry {

/// A simple polygon as an open vertex ring (no repeated closing vertex).
/// Vertex order may be CW or CCW; `signed_area` exposes which.
struct Polygon {
  std::vector<Point> pts;

  Polygon() = default;
  explicit Polygon(std::vector<Point> p) : pts(std::move(p)) {}

  std::size_t size() const { return pts.size(); }
  bool empty() const { return pts.empty(); }
  Point& operator[](std::size_t i) { return pts[i]; }
  const Point& operator[](std::size_t i) const { return pts[i]; }
};

/// Shoelace area: positive for counter-clockwise rings, 0 for degenerate
/// (fewer than 3 vertices or collinear) rings.
double signed_area(const Polygon& poly);
/// |signed_area|.
double area(const Polygon& poly);

/// Vertex-average centroid (robust for the convex outlines used here;
/// degenerate polygons return the mean of whatever vertices exist).
Point centroid(const Polygon& poly);

/// Axis-aligned bounding box; a default Rect for empty polygons.
Rect bounding_box(const Polygon& poly);

/// Is the ring convex? Collinear vertices are allowed; polygons with fewer
/// than 3 vertices count as (degenerately) convex.
bool is_convex(const Polygon& poly);

/// Point-vs-polygon with the boundary as its own class, exact on the
/// boundary thanks to the orientation predicate. Zero-area polygons contain
/// only their boundary points.
enum class Containment { Outside, Boundary, Inside };
Containment contains(const Polygon& poly, Point p);

/// Counter-clockwise convex hull (Andrew monotone chain) with collinear
/// interior points dropped. Degenerate inputs stay well-defined: all points
/// collinear yields the 2-point extreme segment, all points equal yields a
/// single point, no points yields an empty polygon.
Polygon convex_hull(std::vector<Point> points);

/// The four rect corners as a counter-clockwise polygon.
Polygon rect_polygon(const Rect& r);

/// Sutherland-Hodgman: clip `subject` against a convex window. Returns the
/// (possibly empty) clipped ring. Throws std::invalid_argument when `clip`
/// is not convex or has fewer than 3 vertices.
Polygon clip_convex(const Polygon& subject, const Polygon& clip);

/// Clip a convex ring against the half-plane n.p <= c (keep side).
Polygon clip_halfplane(const Polygon& poly, Point n, double c);

/// Fan/ear-clipping triangulation of a simple polygon (each triangle is a
/// CCW 3-vertex Polygon). Zero-area polygons triangulate to nothing.
std::vector<Polygon> triangulate(const Polygon& poly);

/// General boolean intersection path: when `clip` is convex this is one
/// Sutherland-Hodgman pass; otherwise `clip` is triangulated and the
/// subject is clipped against each ear, so the returned pieces tile
/// subject-intersect-clip exactly (pieces may share edges). Empty result
/// means disjoint.
std::vector<Polygon> intersect(const Polygon& subject, const Polygon& clip);

/// Total area of subject-intersect-clip via the general boolean path.
double intersection_area(const Polygon& subject, const Polygon& clip);

/// Miter-offset a convex ring outward by `delta` (negative shrinks). The
/// result is the intersection of the edge half-planes shifted by delta, so
/// inward offsets that collapse the ring return an empty polygon. Throws
/// std::invalid_argument for non-convex or degenerate (< 3 vertices, zero
/// area) input -- offsets of non-convex outlines are not well-defined here
/// and must be rejected loudly.
Polygon offset_convex(const Polygon& poly, double delta);

/// Do two convex rings share interior area? (Touching edges/corners do not
/// count: intersection of positive area required.)
bool convex_overlap(const Polygon& a, const Polygon& b);

/// Euclidean clearance between two convex rings: 0 when they overlap or
/// touch, otherwise the minimum edge-to-edge distance.
double convex_clearance(const Polygon& a, const Polygon& b);

}  // namespace gia::geometry
