#pragma once

#include <vector>

#include "geometry/point.hpp"

/// \file polyline.hpp
/// A routed wire path: ordered points plus the layer each segment runs on.
/// Layer changes between consecutive points imply vias.

namespace gia::geometry {

struct PolylinePoint {
  Point p;
  int layer = 0;  ///< metal layer index the wire *arrives* on at this point
};

class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<PolylinePoint> pts) : pts_(std::move(pts)) {}

  void append(Point p, int layer) { pts_.push_back({p, layer}); }
  const std::vector<PolylinePoint>& points() const { return pts_; }
  bool empty() const { return pts_.empty(); }
  std::size_t size() const { return pts_.size(); }

  /// Total in-plane length (Euclidean per segment; exact for Manhattan and
  /// octilinear routes since their segments are straight).
  double length() const;

  /// Number of layer transitions along the path (each is one via, stacked
  /// vias counted per layer hop).
  int via_count() const;

  /// Highest and lowest layer touched; {0,0} when empty.
  std::pair<int, int> layer_span() const;

 private:
  std::vector<PolylinePoint> pts_;
};

}  // namespace gia::geometry
