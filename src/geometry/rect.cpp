#include "geometry/rect.hpp"

#include <limits>

namespace gia::geometry {

Rect Rect::united(const Rect& r) const {
  return {std::min(lx, r.lx), std::min(ly, r.ly), std::max(ux, r.ux), std::max(uy, r.uy)};
}

Rect Rect::intersected(const Rect& r) const {
  Rect out{std::max(lx, r.lx), std::max(ly, r.ly), std::min(ux, r.ux), std::min(uy, r.uy)};
  if (out.ux < out.lx) out.ux = out.lx;
  if (out.uy < out.ly) out.uy = out.ly;
  return out;
}

Rect Rect::inflated(double margin) const {
  Rect out{lx - margin, ly - margin, ux + margin, uy + margin};
  if (out.ux < out.lx) out.lx = out.ux = (out.lx + out.ux) / 2;
  if (out.uy < out.ly) out.ly = out.uy = (out.ly + out.uy) / 2;
  return out;
}

double hpwl(const Point* pts, int n) {
  if (n <= 1) return 0.0;
  double min_x = std::numeric_limits<double>::max(), max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x, max_y = max_x;
  for (int i = 0; i < n; ++i) {
    min_x = std::min(min_x, pts[i].x);
    max_x = std::max(max_x, pts[i].x);
    min_y = std::min(min_y, pts[i].y);
    max_y = std::max(max_y, pts[i].y);
  }
  return (max_x - min_x) + (max_y - min_y);
}

}  // namespace gia::geometry
