#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

/// \file voronoi.hpp
/// Voronoi-seeded region decomposition of a bounding window: each seed owns
/// the convex cell of points closer to it than to any other seed, clipped to
/// the window. Cells tile the window exactly (up to shared edges), so they
/// serve as per-die escape/bump regions for the floorplanner's congestion
/// model: a die crowded by neighbors gets a small cell and a small escape
/// perimeter. Built by half-plane clipping (O(n) clips per seed), which is
/// exact enough at chiplet counts and keeps the kernel dependency-free.

namespace gia::geometry {

struct VoronoiCell {
  int seed = 0;     ///< index into the input seed list
  Polygon cell;     ///< convex region owned by this seed (CCW)
};

/// Decompose `bounds` into one convex cell per seed. Seeds must be nonempty,
/// distinct, and inside `bounds`; throws std::invalid_argument otherwise
/// (duplicate seeds make ownership ill-defined, zero seeds leave the window
/// unowned). A single seed owns the whole window.
/// `max_neighbors` > 0 clips each cell against only that many nearest
/// neighbors (ties broken by seed index): an approximation that is exact
/// whenever every true Voronoi neighbor is among the nearest
/// `max_neighbors`, and keeps the decomposition O(n * max_neighbors) for
/// annealer-loop use. 0 clips against every other seed (exact).
std::vector<VoronoiCell> voronoi_regions(const std::vector<Point>& seeds, const Rect& bounds,
                                         int max_neighbors = 0);

}  // namespace gia::geometry
