#pragma once

#include <cassert>
#include <vector>

/// \file grid.hpp
/// Dense 2D grid with value semantics, used by routers (capacity/usage maps),
/// the PDN IR-drop mesh and the thermal solver layers.

namespace gia::geometry {

template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(int nx, int ny, T init = T{}) : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx) * ny, init) {
    assert(nx >= 0 && ny >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  bool in_bounds(int x, int y) const { return x >= 0 && x < nx_ && y >= 0 && y < ny_; }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }

  void fill(const T& v) { data_.assign(data_.size(), v); }
  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  int nx_ = 0, ny_ = 0;
  std::vector<T> data_;
};

}  // namespace gia::geometry
