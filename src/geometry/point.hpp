#pragma once

#include <cmath>
#include <compare>

/// \file point.hpp
/// 2D point/vector in micrometers with Manhattan, Euclidean and octilinear
/// distance helpers. Octilinear distance is the shortest path length when 45
/// degree segments are allowed, which is the routing style used by the
/// organic (Shinko/APX) interposers in the paper.

namespace gia::geometry {

struct Point {
  double x = 0.0;  ///< micrometers
  double y = 0.0;  ///< micrometers

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/// L1 (Manhattan) distance: the wirelength of an ideal two-pin net routed
/// with horizontal/vertical segments only.
inline double manhattan_distance(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance.
inline double euclidean_distance(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Shortest path length when 0/45/90 degree segments are allowed
/// (octilinear / X-routing). For dx >= dy the path is (dx - dy) straight
/// plus dy * sqrt(2) diagonal.
inline double octilinear_distance(Point a, Point b) {
  const double dx = std::abs(a.x - b.x);
  const double dy = std::abs(a.y - b.y);
  const double lo = std::min(dx, dy);
  const double hi = std::max(dx, dy);
  return (hi - lo) + lo * std::sqrt(2.0);
}

}  // namespace gia::geometry
