#pragma once

/// \file units.hpp
/// Physical unit conventions and conversion helpers used across the toolkit.
///
/// Geometry is expressed in micrometers (um), electrical quantities in SI
/// (ohms, farads, henries, volts, seconds, watts), temperatures in Celsius
/// and thermal conductivities in W/(m*K). Helpers here keep conversions
/// explicit at module boundaries.

namespace gia::geometry {

/// Lengths in this library are doubles in micrometers unless a function says
/// otherwise. These helpers make call sites self-documenting.
constexpr double um(double v) { return v; }
constexpr double mm(double v) { return v * 1e3; }
constexpr double nm(double v) { return v * 1e-3; }

/// Convert micrometers to meters for electrical/thermal formulas.
constexpr double um_to_m(double v_um) { return v_um * 1e-6; }
constexpr double m_to_um(double v_m) { return v_m * 1e6; }
constexpr double um_to_mm(double v_um) { return v_um * 1e-3; }
constexpr double mm_to_um(double v_mm) { return v_mm * 1e3; }

/// Area conversions.
constexpr double um2_to_mm2(double v) { return v * 1e-6; }
constexpr double mm2_to_um2(double v) { return v * 1e6; }
constexpr double um2_to_m2(double v) { return v * 1e-12; }

namespace constants {
/// Vacuum permittivity [F/m].
inline constexpr double eps0 = 8.8541878128e-12;
/// Vacuum permeability [H/m].
inline constexpr double mu0 = 1.25663706212e-6;
/// Speed of light [m/s].
inline constexpr double c0 = 2.99792458e8;
/// Copper resistivity at room temperature [ohm*m].
inline constexpr double rho_copper = 1.72e-8;
/// Pi. (std::numbers::pi is fine too; kept here so unit constants live together.)
inline constexpr double pi = 3.14159265358979323846;
}  // namespace constants

}  // namespace gia::geometry
