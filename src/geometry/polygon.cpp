#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gia::geometry {

namespace {

/// Intersection of segment [p,q] with the directed line a->b, given the two
/// signed areas (caller guarantees p and q straddle the line, so the
/// denominator is nonzero).
Point edge_cross(Point p, Point q, Point a, Point b) {
  const double op = orient2d(a, b, p);
  const double oq = orient2d(a, b, q);
  const double t = op / (op - oq);
  return {p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)};
}

Polygon ccw_ring(Polygon poly) {
  if (signed_area(poly) < 0.0) std::reverse(poly.pts.begin(), poly.pts.end());
  return poly;
}

}  // namespace

double signed_area(const Polygon& poly) {
  const std::size_t n = poly.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice / 2.0;
}

double area(const Polygon& poly) { return std::abs(signed_area(poly)); }

Point centroid(const Polygon& poly) {
  if (poly.empty()) return {0, 0};
  Point c{0, 0};
  for (const Point& p : poly.pts) {
    c.x += p.x;
    c.y += p.y;
  }
  const double n = static_cast<double>(poly.size());
  return {c.x / n, c.y / n};
}

Rect bounding_box(const Polygon& poly) {
  if (poly.empty()) return {};
  Rect r{poly[0].x, poly[0].y, poly[0].x, poly[0].y};
  for (const Point& p : poly.pts) {
    r.lx = std::min(r.lx, p.x);
    r.ly = std::min(r.ly, p.y);
    r.ux = std::max(r.ux, p.x);
    r.uy = std::max(r.uy, p.y);
  }
  return r;
}

bool is_convex(const Polygon& poly) {
  const std::size_t n = poly.size();
  if (n < 3) return true;
  int sign = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Orientation o = orientation(poly[i], poly[(i + 1) % n], poly[(i + 2) % n]);
    if (o == Orientation::Collinear) continue;
    const int s = o == Orientation::CounterClockwise ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

Containment contains(const Polygon& poly, Point p) {
  const std::size_t n = poly.size();
  if (n == 0) return Containment::Outside;
  for (std::size_t i = 0; i < n; ++i) {
    if (on_segment(poly[i], poly[(i + 1) % n], p)) return Containment::Boundary;
  }
  // Exact-sign crossing count of a rightward ray; boundary hits are already
  // classified above, so strict comparisons are safe here.
  bool inside = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % n];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double o = orient2d(a, b, p);
      if (b.y > a.y ? o > 0.0 : o < 0.0) inside = !inside;
    }
  }
  return inside ? Containment::Inside : Containment::Outside;
}

Polygon convex_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const Point& a, const Point& b) { return a.x == b.x && a.y == b.y; }),
               points.end());
  const std::size_t n = points.size();
  if (n <= 2) return Polygon{std::move(points)};

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 && orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper chain
    while (k >= lower && orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return Polygon{std::move(hull)};
}

Polygon rect_polygon(const Rect& r) {
  return Polygon{{{r.lx, r.ly}, {r.ux, r.ly}, {r.ux, r.uy}, {r.lx, r.uy}}};
}

Polygon clip_halfplane(const Polygon& poly, Point n, double c) {
  const std::size_t cnt = poly.size();
  if (cnt == 0) return {};
  auto val = [&](const Point& p) { return n.x * p.x + n.y * p.y; };
  Polygon out;
  for (std::size_t i = 0; i < cnt; ++i) {
    const Point& prev = poly[(i + cnt - 1) % cnt];
    const Point& cur = poly[i];
    const double vp = val(prev), vc = val(cur);
    const bool prev_in = vp <= c, cur_in = vc <= c;
    if (cur_in) {
      if (!prev_in) {
        const double t = (c - vp) / (vc - vp);
        out.pts.push_back({prev.x + t * (cur.x - prev.x), prev.y + t * (cur.y - prev.y)});
      }
      out.pts.push_back(cur);
    } else if (prev_in) {
      const double t = (c - vp) / (vc - vp);
      out.pts.push_back({prev.x + t * (cur.x - prev.x), prev.y + t * (cur.y - prev.y)});
    }
  }
  return out;
}

Polygon clip_convex(const Polygon& subject, const Polygon& clip) {
  if (clip.size() < 3 || !is_convex(clip)) {
    throw std::invalid_argument("clip_convex: clip window must be a convex polygon");
  }
  if (area(clip) == 0.0) {
    throw std::invalid_argument("clip_convex: clip window has zero area");
  }
  const Polygon window = ccw_ring(clip);
  Polygon out = subject;
  const std::size_t n = window.size();
  for (std::size_t e = 0; e < n && !out.empty(); ++e) {
    const Point a = window[e];
    const Point b = window[(e + 1) % n];
    Polygon in = std::move(out);
    out = Polygon{};
    const std::size_t m = in.size();
    for (std::size_t i = 0; i < m; ++i) {
      const Point& prev = in[(i + m - 1) % m];
      const Point& cur = in[i];
      const bool prev_in = orient2d(a, b, prev) >= 0.0;
      const bool cur_in = orient2d(a, b, cur) >= 0.0;
      if (cur_in) {
        if (!prev_in) out.pts.push_back(edge_cross(prev, cur, a, b));
        out.pts.push_back(cur);
      } else if (prev_in) {
        out.pts.push_back(edge_cross(prev, cur, a, b));
      }
    }
  }
  return out;
}

std::vector<Polygon> triangulate(const Polygon& poly) {
  std::vector<Polygon> tris;
  if (poly.size() < 3 || area(poly) == 0.0) return tris;
  Polygon ring = ccw_ring(poly);
  std::vector<Point>& v = ring.pts;
  while (v.size() > 3) {
    const std::size_t n = v.size();
    bool clipped = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Point& prev = v[(i + n - 1) % n];
      const Point& cur = v[i];
      const Point& next = v[(i + 1) % n];
      const Orientation o = orientation(prev, cur, next);
      if (o == Orientation::Collinear) {
        // Zero-area ear: the vertex contributes nothing, drop it.
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        clipped = true;
        break;
      }
      if (o != Orientation::CounterClockwise) continue;  // reflex vertex
      const Polygon ear{{prev, cur, next}};
      bool blocked = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || j == (i + n - 1) % n || j == (i + 1) % n) continue;
        // Boundary contact blocks too: a reflex vertex sitting exactly on
        // the ear's diagonal would let the ear poke through the notch.
        if (contains(ear, v[j]) != Containment::Outside) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      tris.push_back(ear);
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
      clipped = true;
      break;
    }
    if (!clipped) {
      throw std::invalid_argument("triangulate: polygon is not simple");
    }
  }
  if (v.size() == 3 && orientation(v[0], v[1], v[2]) != Orientation::Collinear) {
    tris.push_back(Polygon{{v[0], v[1], v[2]}});
  }
  return tris;
}

std::vector<Polygon> intersect(const Polygon& subject, const Polygon& clip) {
  std::vector<Polygon> pieces;
  if (subject.size() < 3 || clip.size() < 3) return pieces;
  auto keep = [&pieces](Polygon&& p) {
    if (p.size() >= 3 && area(p) > 0.0) pieces.push_back(std::move(p));
  };
  if (is_convex(clip) && area(clip) > 0.0) {
    keep(clip_convex(subject, clip));
    return pieces;
  }
  // General path: the clip window is decomposed into triangles and the
  // subject clipped against each, so the pieces tile the boolean result.
  for (const Polygon& tri : triangulate(clip)) {
    keep(clip_convex(subject, tri));
  }
  return pieces;
}

double intersection_area(const Polygon& subject, const Polygon& clip) {
  double total = 0.0;
  for (const Polygon& piece : intersect(subject, clip)) total += area(piece);
  return total;
}

Polygon offset_convex(const Polygon& poly, double delta) {
  if (poly.size() < 3 || area(poly) == 0.0) {
    throw std::invalid_argument("offset_convex: degenerate outline");
  }
  if (!is_convex(poly)) {
    throw std::invalid_argument("offset_convex: non-convex outline offsets are not supported");
  }
  const Polygon ring = ccw_ring(poly);
  // Start from a box guaranteed to contain the result and intersect the
  // outward-shifted edge half-planes (miter joins fall out of the
  // half-plane intersection).
  const Rect bb = bounding_box(ring);
  const double pad = std::abs(delta) + std::max(bb.width(), bb.height()) + 1.0;
  Polygon out = rect_polygon(bb.inflated(pad));
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n && !out.empty(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % n];
    const double len = std::hypot(b.x - a.x, b.y - a.y);
    if (len == 0.0) continue;
    // For a CCW ring the outward normal of edge a->b points right of the
    // direction of travel.
    const Point nrm{(b.y - a.y) / len, -(b.x - a.x) / len};
    out = clip_halfplane(out, nrm, nrm.x * a.x + nrm.y * a.y + delta);
  }
  if (out.size() < 3 || area(out) == 0.0) return {};
  return out;
}

bool convex_overlap(const Polygon& a, const Polygon& b) {
  if (a.size() < 3 || b.size() < 3) return false;
  // Positive-area intersection required: touching edges/corners produce
  // only roundoff-scale slivers, rejected by the relative tolerance.
  const double tol = 1e-9 * std::max(1.0, std::min(area(a), area(b)));
  return intersection_area(a, b) > tol;
}

double convex_clearance(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return 0.0;
  if (!a.pts.empty() && !b.pts.empty()) {
    if (contains(a, b[0]) != Containment::Outside || contains(b, a[0]) != Containment::Outside) {
      return 0.0;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  const std::size_t na = a.size(), nb = b.size();
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      best = std::min(best, segment_segment_distance(a[i], a[(i + 1) % na], b[j], b[(j + 1) % nb]));
    }
  }
  return best;
}

}  // namespace gia::geometry
