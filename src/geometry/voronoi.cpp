#include "geometry/voronoi.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace gia::geometry {

std::vector<VoronoiCell> voronoi_regions(const std::vector<Point>& seeds, const Rect& bounds,
                                         int max_neighbors) {
  const std::size_t n = seeds.size();
  if (n == 0) throw std::invalid_argument("voronoi_regions: no seeds");
  std::vector<VoronoiCell> cells;
  for (std::size_t i = 0; i < n; ++i) {
    if (!bounds.contains(seeds[i])) {
      throw std::invalid_argument("voronoi_regions: seed " + std::to_string(i) +
                                  " outside the bounding window");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (seeds[i].x == seeds[j].x && seeds[i].y == seeds[j].y) {
        throw std::invalid_argument("voronoi_regions: duplicate seeds " + std::to_string(i) +
                                    " and " + std::to_string(j));
      }
    }
  }
  std::vector<std::size_t> order(n);
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Cell i = window clipped by every bisector half-plane "closer to seed i
    // than seed j": (j - i) . p <= (|j|^2 - |i|^2) / 2. With a neighbor cap,
    // only the nearest `max_neighbors` seeds contribute bisectors; far seeds
    // almost never bound the cell, so the cap trades exactness at the window
    // rim for O(n * cap) clips.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::size_t count = n;
    if (max_neighbors > 0 && n - 1 > static_cast<std::size_t>(max_neighbors)) {
      auto dist2 = [&](std::size_t j) {
        const double dx = seeds[j].x - seeds[i].x;
        const double dy = seeds[j].y - seeds[i].y;
        return dx * dx + dy * dy;
      };
      // Self sorts first (distance 0) and is skipped below, so keep cap + 1.
      count = static_cast<std::size_t>(max_neighbors) + 1;
      std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count),
                        order.end(), [&](std::size_t a, std::size_t b) {
                          const double da = dist2(a), db = dist2(b);
                          return da != db ? da < db : a < b;
                        });
    }
    Polygon cell = rect_polygon(bounds);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t j = order[k];
      if (j == i) continue;
      if (cell.empty()) break;
      const Point d{seeds[j].x - seeds[i].x, seeds[j].y - seeds[i].y};
      const double c = (seeds[j].x * seeds[j].x + seeds[j].y * seeds[j].y -
                        seeds[i].x * seeds[i].x - seeds[i].y * seeds[i].y) /
                       2.0;
      cell = clip_halfplane(cell, d, c);
    }
    cells.push_back({static_cast<int>(i), std::move(cell)});
  }
  return cells;
}

}  // namespace gia::geometry
