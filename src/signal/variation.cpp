#include "signal/variation.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "core/instrument.hpp"
#include "core/parallel.hpp"

namespace gia::signal {

VariationResult monte_carlo_delay(const LinkSpec& nominal, const VariationSpec& var) {
  GIA_SPAN("signal/variation_mc");
  if (var.samples < 2) throw std::invalid_argument("need >= 2 samples");
  core::instrument::counter_add(core::instrument::Counter::McTrials,
                                static_cast<std::uint64_t>(var.samples));
  VariationResult out;
  out.nominal_delay_s = simulate_link(nominal).interconnect_delay_s;

  // Per-trial RNG seeded as seed + trial_index: every trial draws from its
  // own stream, so the fan-out is bit-identical at any thread count and a
  // trial's corner does not depend on how many trials ran before it.
  out.samples_s.assign(static_cast<std::size_t>(var.samples), 0.0);
  core::parallel_for(static_cast<std::size_t>(var.samples), [&](std::size_t s) {
    std::mt19937 rng(var.seed + static_cast<unsigned>(s));
    std::normal_distribution<double> gauss(0.0, 1.0);
    // Relative factors floor at 0.5 to keep element values physical even in
    // extreme tails.
    auto factor = [&](double sigma) { return std::max(0.5, 1.0 + sigma * gauss(rng)); };

    LinkSpec trial = nominal;
    const double fr = factor(var.sigma_r);
    const double fc = factor(var.sigma_c);
    trial.line.self.R *= fr;
    trial.line.self.C *= fc;
    trial.line.Cm *= fc;
    const double fl = factor(var.sigma_lumped);
    for (auto& e : trial.pre_elements) {
      e.R *= fr;
      e.C *= fl;
      e.L *= fl;
    }
    for (auto& e : trial.post_elements) {
      e.R *= fr;
      e.C *= fl;
      e.L *= fl;
    }
    out.samples_s[s] = simulate_link(trial).interconnect_delay_s;
  });

  // Reduce serially in trial order so the statistics are byte-identical to
  // the single-thread path.
  double sum = 0, sum_sq = 0;
  for (double d : out.samples_s) {
    sum += d;
    sum_sq += d * d;
    out.worst_delay_s = std::max(out.worst_delay_s, d);
  }
  const double n = static_cast<double>(var.samples);
  out.mean_delay_s = sum / n;
  out.sigma_delay_s = std::sqrt(std::max(0.0, sum_sq / n - out.mean_delay_s * out.mean_delay_s));
  return out;
}

}  // namespace gia::signal
