#include "signal/variation.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace gia::signal {

VariationResult monte_carlo_delay(const LinkSpec& nominal, const VariationSpec& var) {
  if (var.samples < 2) throw std::invalid_argument("need >= 2 samples");
  VariationResult out;
  out.nominal_delay_s = simulate_link(nominal).interconnect_delay_s;

  std::mt19937 rng(var.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  // Relative factors floor at 0.5 to keep element values physical even in
  // extreme tails.
  auto factor = [&](double sigma) { return std::max(0.5, 1.0 + sigma * gauss(rng)); };

  out.samples_s.reserve(static_cast<std::size_t>(var.samples));
  double sum = 0, sum_sq = 0;
  for (int s = 0; s < var.samples; ++s) {
    LinkSpec trial = nominal;
    const double fr = factor(var.sigma_r);
    const double fc = factor(var.sigma_c);
    trial.line.self.R *= fr;
    trial.line.self.C *= fc;
    trial.line.Cm *= fc;
    const double fl = factor(var.sigma_lumped);
    for (auto& e : trial.pre_elements) {
      e.R *= fr;
      e.C *= fl;
      e.L *= fl;
    }
    for (auto& e : trial.post_elements) {
      e.R *= fr;
      e.C *= fl;
      e.L *= fl;
    }
    const double d = simulate_link(trial).interconnect_delay_s;
    out.samples_s.push_back(d);
    sum += d;
    sum_sq += d * d;
    out.worst_delay_s = std::max(out.worst_delay_s, d);
  }
  const double n = static_cast<double>(var.samples);
  out.mean_delay_s = sum / n;
  out.sigma_delay_s = std::sqrt(std::max(0.0, sum_sq / n - out.mean_delay_s * out.mean_delay_s));
  return out;
}

}  // namespace gia::signal
