#include "signal/prbs.hpp"

#include <stdexcept>

namespace gia::signal {
namespace {

std::vector<int> lfsr(int n_bits, unsigned seed, int nstages, int tap_a, int tap_b) {
  if (n_bits <= 0) throw std::invalid_argument("n_bits must be positive");
  unsigned state = seed & ((1u << nstages) - 1);
  if (state == 0) state = 1;  // all-zero state is a fixed point
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_bits));
  for (int i = 0; i < n_bits; ++i) {
    const int bit = static_cast<int>((state >> (tap_a - 1) ^ state >> (tap_b - 1)) & 1u);
    state = (state << 1 | static_cast<unsigned>(bit)) & ((1u << nstages) - 1);
    out.push_back(bit);
  }
  return out;
}

}  // namespace

std::vector<int> prbs7(int n_bits, unsigned seed) { return lfsr(n_bits, seed, 7, 7, 6); }

std::vector<int> prbs15(int n_bits, unsigned seed) { return lfsr(n_bits, seed, 15, 15, 14); }

std::vector<int> clock_pattern(int n_bits) {
  if (n_bits <= 0) throw std::invalid_argument("n_bits must be positive");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_bits));
  for (int i = 0; i < n_bits; ++i) out.push_back(i & 1);
  return out;
}

}  // namespace gia::signal
