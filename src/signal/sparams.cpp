#include "signal/sparams.hpp"

#include <cmath>

namespace gia::signal {

Abcd Abcd::then(const Abcd& n) const {
  Abcd out;
  out.A = A * n.A + B * n.C;
  out.B = A * n.B + B * n.D;
  out.C = C * n.A + D * n.C;
  out.D = C * n.B + D * n.D;
  return out;
}

Abcd line_abcd(const extract::Rlgc& rlgc, double length_um, double freq_hz) {
  const double w = 2.0 * 3.14159265358979323846 * freq_hz;
  const cplx z(rlgc.R, w * rlgc.L);
  const cplx y(rlgc.G, w * rlgc.C);
  const cplx gamma = std::sqrt(z * y);
  const cplx z0 = std::sqrt(z / y);
  const cplx gl = gamma * (length_um * 1e-6);
  Abcd out;
  out.A = std::cosh(gl);
  out.B = z0 * std::sinh(gl);
  out.C = std::sinh(gl) / z0;
  out.D = out.A;
  return out;
}

Abcd series_abcd(cplx z) {
  Abcd out;
  out.B = z;
  return out;
}

Abcd shunt_abcd(cplx y) {
  Abcd out;
  out.C = y;
  return out;
}

Abcd lumped_abcd(const extract::LumpedRlc& m, double freq_hz) {
  const double w = 2.0 * 3.14159265358979323846 * freq_hz;
  const cplx z(m.R, w * m.L);
  const cplx y_half(0.0, w * m.C / 2.0);
  return shunt_abcd(y_half).then(series_abcd(z)).then(shunt_abcd(y_half));
}

Sparams to_sparams(const Abcd& m, double z0) {
  const cplx denom = m.A + m.B / z0 + m.C * z0 + m.D;
  Sparams s;
  s.s11 = (m.A + m.B / z0 - m.C * z0 - m.D) / denom;
  s.s21 = 2.0 / denom;
  s.s12 = 2.0 * (m.A * m.D - m.B * m.C) / denom;
  s.s22 = (-m.A + m.B / z0 - m.C * z0 + m.D) / denom;
  return s;
}

std::vector<double> insertion_loss_db(const std::vector<Abcd>& cascade_per_freq) {
  std::vector<double> out;
  out.reserve(cascade_per_freq.size());
  for (const auto& m : cascade_per_freq) {
    out.push_back(20.0 * std::log10(std::abs(to_sparams(m).s21)));
  }
  return out;
}

}  // namespace gia::signal
