#pragma once

#include "signal/link_sim.hpp"

/// \file variation.hpp
/// Process-corner analysis for interposer channels. RDL width/thickness and
/// dielectric tolerances are the glass process's main risk (the paper's
/// Table I rules are nominal); this runs Monte Carlo over per-unit-length
/// R/L/C and reports the delay distribution a signoff flow would margin
/// against.

namespace gia::signal {

struct VariationSpec {
  /// 1-sigma relative variation of line resistance (width/thickness).
  double sigma_r = 0.10;
  /// 1-sigma relative variation of capacitance (dielectric thickness/er).
  double sigma_c = 0.08;
  /// 1-sigma relative variation of lumped element parasitics.
  double sigma_lumped = 0.10;
  int samples = 40;
  unsigned seed = 42;
};

struct VariationResult {
  double nominal_delay_s = 0;
  double mean_delay_s = 0;
  double sigma_delay_s = 0;
  double worst_delay_s = 0;   ///< max over samples
  /// Nominal + 3 sigma -- the margining number.
  double delay_3sigma_s() const { return mean_delay_s + 3.0 * sigma_delay_s; }
  std::vector<double> samples_s;
};

/// Monte Carlo the link's interconnect delay under process variation.
VariationResult monte_carlo_delay(const LinkSpec& nominal, const VariationSpec& var = {});

}  // namespace gia::signal
