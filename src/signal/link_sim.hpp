#pragma once

#include <string>
#include <vector>

#include "circuit/waveform.hpp"
#include "extract/line_model.hpp"
#include "signal/aib.hpp"

/// \file link_sim.hpp
/// End-to-end chiplet-to-chiplet link simulation: AIB TX -> (bumps/vias) ->
/// interposer line or 3D vertical stack -> (bumps/vias) -> AIB RX. Produces
/// the delay/power decomposition of Tables V and VI and drives the eye
/// analysis of Fig 14.

namespace gia::signal {

/// Channel description. A purely vertical (3D) link has length_um = 0 and
/// only series_elements; lateral links have a line plus optional bumps.
struct LinkSpec {
  extract::CoupledRlgc line;   ///< per-unit-length parameters (lateral part)
  double length_um = 0;        ///< lateral routed length
  /// Lumped elements in series before the line (TX-side bump/via stack).
  std::vector<extract::LumpedRlc> pre_elements;
  /// Lumped elements in series after the line (RX-side stack).
  std::vector<extract::LumpedRlc> post_elements;
  DriverModel tx;
  ReceiverModel rx;
  double bit_rate_hz = 0.7e9;  ///< Section VII-A: 0.7 Gbps
  /// Crosstalk coupling fraction between victim and aggressor for purely
  /// lumped (vertical) links, modeling neighbor bumps/TSVs in the 4x4 array.
  double lumped_coupling = 0.15;

  /// Simultaneous-switching (SSO) stress: when > 0, all drivers share a
  /// return path with this inductance [H] to ground, so aggressor edges
  /// bounce the victim's reference -- the bus-level impairment that closes
  /// eyes far beyond 3-line crosstalk. `sso_lanes` scales the aggressor
  /// drive (one modeled aggressor stands in for many switching lanes).
  double shared_return_l = 0.0;
  int sso_lanes = 1;
};

struct LinkResult {
  double driver_delay_s = 0;        ///< TX + RX intrinsic
  double interconnect_delay_s = 0;  ///< 50% pad-to-pad through the channel
  double total_delay_s = 0;
  double driver_power_w = 0;        ///< internal driver power per lane
  double interconnect_power_w = 0;  ///< channel charging power on random data
  double total_power_w = 0;
};

/// Single-edge transient for delay + channel capacitance energy for power.
LinkResult simulate_link(const LinkSpec& spec);

/// Raw receiver-pad waveform for a PRBS pattern on the victim with two
/// independent-pattern aggressors (when the channel is coupled).
struct PrbsRun {
  gia::circuit::Waveform rx;  ///< receiver pad voltage
  double ui_s = 0;            ///< unit interval
  int n_bits = 0;
};
PrbsRun run_prbs(const LinkSpec& spec, int n_bits, unsigned seed = 1);

/// Independent PRBS segments (seed = base_seed + segment index) simulated
/// concurrently on the thread pool -- the parallel unit for ensemble eye
/// folding (see eye.hpp). Segment s is always seeded the same way, so the
/// result is byte-identical at any thread count.
std::vector<PrbsRun> run_prbs_segments(const LinkSpec& spec, int n_bits_per_segment,
                                       int n_segments, unsigned base_seed = 1);

}  // namespace gia::signal
