#include "signal/eye.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gia::signal {

double EyeResult::q_factor() const {
  const double denom = sigma_high_v + sigma_low_v;
  if (denom < 1e-9) return 1e3;
  return std::max(0.0, (mean_high_v - mean_low_v) / denom);
}

double EyeResult::ber_estimate() const {
  return 0.5 * std::erfc(q_factor() / std::sqrt(2.0));
}

EyeResult measure_eye(const PrbsRun& run, const EyeConfig& cfg) {
  const auto& w = run.rx;
  const double ui = run.ui_s;
  if (w.empty() || ui <= 0) throw std::invalid_argument("empty PRBS run");
  const double t_start = cfg.skip_bits * ui;
  if (w.duration() < t_start + 8 * ui) throw std::invalid_argument("PRBS run too short");

  EyeResult out;
  out.ui_s = ui;

  // --- Eye width: fold all threshold crossings into [0, UI) and find the
  // largest circular gap between consecutive crossing phases.
  const auto xs = w.crossings(cfg.threshold, t_start, 0);
  if (xs.size() < 3) {
    // Degenerate: a stuck or rail-to-rail-clean channel. Width = full UI if
    // the signal actually toggles cleanly, 0 if it never crosses.
    out.width_s = xs.empty() ? 0.0 : ui;
  } else {
    std::vector<double> phases;
    phases.reserve(xs.size());
    for (double t : xs) phases.push_back(std::fmod(t, ui));
    std::sort(phases.begin(), phases.end());
    double max_gap = ui - phases.back() + phases.front();  // circular wrap
    for (std::size_t i = 1; i < phases.size(); ++i) {
      max_gap = std::max(max_gap, phases[i] - phases[i - 1]);
    }
    out.width_s = max_gap;
  }

  // --- Eye height: sample at the center of the open region (crossing
  // cluster center + UI/2), classify each UI by level, and take the worst
  // separation.
  // Sampling phase: middle of the largest gap found above shifted to the
  // crossing-free center. Reuse the fold: find the gap center.
  double sample_phase = ui / 2.0;
  {
    const auto cross = w.crossings(cfg.threshold, t_start, 0);
    if (cross.size() >= 3) {
      std::vector<double> phases;
      for (double t : cross) phases.push_back(std::fmod(t, ui));
      std::sort(phases.begin(), phases.end());
      double best_gap = ui - phases.back() + phases.front();
      double center = std::fmod(phases.back() + best_gap / 2.0, ui);
      for (std::size_t i = 1; i < phases.size(); ++i) {
        const double gap = phases[i] - phases[i - 1];
        if (gap > best_gap) {
          best_gap = gap;
          center = phases[i - 1] + gap / 2.0;
        }
      }
      sample_phase = center;
    }
  }

  double min_high = 1e300, max_low = -1e300;
  double sum_h = 0, sq_h = 0, sum_l = 0, sq_l = 0;
  int n_h = 0, n_l = 0;
  const int first_ui = cfg.skip_bits;
  const int last_ui = static_cast<int>(w.duration() / ui) - 1;
  for (int k = first_ui; k < last_ui; ++k) {
    const double v = w.at(k * ui + sample_phase);
    if (v >= cfg.threshold) {
      min_high = std::min(min_high, v);
      sum_h += v;
      sq_h += v * v;
      ++n_h;
    } else {
      max_low = std::max(max_low, v);
      sum_l += v;
      sq_l += v * v;
      ++n_l;
    }
  }
  out.height_v = (n_h > 0 && n_l > 0) ? std::max(0.0, min_high - max_low) : 0.0;
  if (n_h > 0) {
    out.mean_high_v = sum_h / n_h;
    out.sigma_high_v = std::sqrt(std::max(0.0, sq_h / n_h - out.mean_high_v * out.mean_high_v));
  }
  if (n_l > 0) {
    out.mean_low_v = sum_l / n_l;
    out.sigma_low_v = std::sqrt(std::max(0.0, sq_l / n_l - out.mean_low_v * out.mean_low_v));
  }

  if (cfg.keep_traces) {
    const int samples_per_ui = std::max(4, static_cast<int>(std::lround(ui / w.dt())));
    for (int k = first_ui; k < last_ui; ++k) {
      std::vector<double> trace;
      trace.reserve(static_cast<std::size_t>(samples_per_ui));
      for (int s = 0; s < samples_per_ui; ++s) {
        trace.push_back(w.at(k * ui + s * ui / samples_per_ui));
      }
      out.traces.push_back(std::move(trace));
    }
  }
  return out;
}

EyeResult simulate_eye(const LinkSpec& spec, int n_bits, const EyeConfig& cfg) {
  return measure_eye(run_prbs(spec, n_bits), cfg);
}

}  // namespace gia::signal
