#include "signal/eye.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/instrument.hpp"
#include "core/parallel.hpp"

namespace gia::signal {

double EyeResult::q_factor() const {
  const double denom = sigma_high_v + sigma_low_v;
  if (denom < 1e-9) return 1e3;
  return std::max(0.0, (mean_high_v - mean_low_v) / denom);
}

double EyeResult::ber_estimate() const {
  return 0.5 * std::erfc(q_factor() / std::sqrt(2.0));
}

namespace {

/// Accumulated level statistics at the sampling phase. Partials are folded
/// in chunk order by ordered_reduce, so the merged sums are byte-identical
/// at any thread count.
struct LevelStats {
  double min_high = 1e300, max_low = -1e300;
  double sum_h = 0, sq_h = 0, sum_l = 0, sq_l = 0;
  long n_h = 0, n_l = 0;
};

LevelStats merge(LevelStats a, const LevelStats& b) {
  a.min_high = std::min(a.min_high, b.min_high);
  a.max_low = std::max(a.max_low, b.max_low);
  a.sum_h += b.sum_h;
  a.sq_h += b.sq_h;
  a.sum_l += b.sum_l;
  a.sq_l += b.sq_l;
  a.n_h += b.n_h;
  a.n_l += b.n_l;
  return a;
}

/// UIs per reduction chunk: fixed so the chunk grid (and therefore the
/// floating-point accumulation grouping) never depends on the thread count.
constexpr std::size_t kUiGrain = 32;

EyeResult measure_eye_runs(const std::vector<const PrbsRun*>& runs, const EyeConfig& cfg) {
  GIA_SPAN("signal/eye_measure");
  if (runs.empty()) throw std::invalid_argument("no PRBS runs");
  const double ui = runs[0]->ui_s;
  const double t_start = cfg.skip_bits * ui;
  for (const PrbsRun* r : runs) {
    if (r->rx.empty() || r->ui_s <= 0) throw std::invalid_argument("empty PRBS run");
    if (r->ui_s != ui) throw std::invalid_argument("mismatched UI across segments");
    if (r->rx.duration() < t_start + 8 * ui) throw std::invalid_argument("PRBS run too short");
  }

  EyeResult out;
  out.ui_s = ui;

  // --- Eye width: fold every segment's threshold crossings into [0, UI)
  // and find the largest circular gap between consecutive crossing phases.
  // Segments contribute in order, and the sort makes the set canonical, so
  // the fold is deterministic. The gap center doubles as the sampling phase.
  std::vector<double> phases;
  for (const PrbsRun* r : runs) {
    const auto xs = r->rx.crossings(cfg.threshold, t_start, 0);
    phases.reserve(phases.size() + xs.size());
    for (double t : xs) phases.push_back(std::fmod(t, ui));
  }
  double sample_phase = ui / 2.0;
  if (phases.size() < 3) {
    // Degenerate: a stuck or rail-to-rail-clean channel. Width = full UI if
    // the signal actually toggles cleanly, 0 if it never crosses.
    out.width_s = phases.empty() ? 0.0 : ui;
  } else {
    std::sort(phases.begin(), phases.end());
    double best_gap = ui - phases.back() + phases.front();  // circular wrap
    double center = std::fmod(phases.back() + best_gap / 2.0, ui);
    for (std::size_t i = 1; i < phases.size(); ++i) {
      const double gap = phases[i] - phases[i - 1];
      if (gap > best_gap) {
        best_gap = gap;
        center = phases[i - 1] + gap / 2.0;
      }
    }
    out.width_s = best_gap;
    sample_phase = center;
  }

  // --- Eye height: sample every UI of every segment at the sampling phase,
  // classify by level, and take the worst separation. The global UI index
  // space [0, total_uis) spans the segments in order; the reduction chunks
  // it with a fixed grain so the result is thread-count independent.
  const int first_ui = cfg.skip_bits;
  std::vector<std::size_t> seg_offset(runs.size() + 1, 0);
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const int last_ui = static_cast<int>(runs[s]->rx.duration() / ui) - 1;
    const int count = std::max(0, last_ui - first_ui);
    seg_offset[s + 1] = seg_offset[s] + static_cast<std::size_t>(count);
  }
  const std::size_t total_uis = seg_offset.back();
  core::instrument::counter_add(core::instrument::Counter::EyeUis, total_uis);

  auto locate = [&](std::size_t gi) {
    const auto it = std::upper_bound(seg_offset.begin(), seg_offset.end(), gi);
    const std::size_t s = static_cast<std::size_t>(it - seg_offset.begin()) - 1;
    const int k = first_ui + static_cast<int>(gi - seg_offset[s]);
    return std::pair<std::size_t, int>(s, k);
  };

  const LevelStats stats = core::ordered_reduce(
      total_uis, kUiGrain, LevelStats{},
      [&](std::size_t begin, std::size_t end) {
        LevelStats p;
        for (std::size_t gi = begin; gi < end; ++gi) {
          const auto [s, k] = locate(gi);
          const double v = runs[s]->rx.at(k * ui + sample_phase);
          if (v >= cfg.threshold) {
            p.min_high = std::min(p.min_high, v);
            p.sum_h += v;
            p.sq_h += v * v;
            ++p.n_h;
          } else {
            p.max_low = std::max(p.max_low, v);
            p.sum_l += v;
            p.sq_l += v * v;
            ++p.n_l;
          }
        }
        return p;
      },
      [](LevelStats acc, LevelStats p) { return merge(std::move(acc), p); });

  out.height_v =
      (stats.n_h > 0 && stats.n_l > 0) ? std::max(0.0, stats.min_high - stats.max_low) : 0.0;
  if (stats.n_h > 0) {
    out.mean_high_v = stats.sum_h / static_cast<double>(stats.n_h);
    out.sigma_high_v = std::sqrt(std::max(
        0.0, stats.sq_h / static_cast<double>(stats.n_h) - out.mean_high_v * out.mean_high_v));
  }
  if (stats.n_l > 0) {
    out.mean_low_v = stats.sum_l / static_cast<double>(stats.n_l);
    out.sigma_low_v = std::sqrt(std::max(
        0.0, stats.sq_l / static_cast<double>(stats.n_l) - out.mean_low_v * out.mean_low_v));
  }

  if (cfg.keep_traces) {
    const int samples_per_ui =
        std::max(4, static_cast<int>(std::lround(ui / runs[0]->rx.dt())));
    out.traces.assign(total_uis, {});
    core::parallel_for(total_uis, [&](std::size_t gi) {
      const auto [s, k] = locate(gi);
      auto& trace = out.traces[gi];
      trace.reserve(static_cast<std::size_t>(samples_per_ui));
      for (int i = 0; i < samples_per_ui; ++i) {
        trace.push_back(runs[s]->rx.at(k * ui + i * ui / samples_per_ui));
      }
    });
  }
  return out;
}

}  // namespace

EyeResult measure_eye(const PrbsRun& run, const EyeConfig& cfg) {
  return measure_eye_runs({&run}, cfg);
}

EyeResult measure_eye_ensemble(const std::vector<PrbsRun>& runs, const EyeConfig& cfg) {
  std::vector<const PrbsRun*> ptrs;
  ptrs.reserve(runs.size());
  for (const auto& r : runs) ptrs.push_back(&r);
  return measure_eye_runs(ptrs, cfg);
}

EyeResult simulate_eye(const LinkSpec& spec, int n_bits, const EyeConfig& cfg) {
  return measure_eye(run_prbs(spec, n_bits), cfg);
}

EyeResult simulate_eye_ensemble(const LinkSpec& spec, int n_bits_per_segment, int n_segments,
                                const EyeConfig& cfg) {
  return measure_eye_ensemble(run_prbs_segments(spec, n_bits_per_segment, n_segments), cfg);
}

}  // namespace gia::signal
