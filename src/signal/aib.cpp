#include "signal/aib.hpp"

namespace gia::signal {

double driver_internal_power(const DriverModel& d, const AibFootprint& f, double bit_rate_hz,
                             double activity) {
  // `activity` transitions per bit on random data.
  return d.internal_energy_per_edge * activity * bit_rate_hz + f.leakage_w;
}

}  // namespace gia::signal
