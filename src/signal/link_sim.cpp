#include "signal/link_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/transient.hpp"
#include "core/instrument.hpp"
#include "core/parallel.hpp"
#include "signal/prbs.hpp"

namespace gia::signal {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Stimulus;

struct ChannelNodes {
  NodeId v_ideal = 0;  ///< ideal source behind the output impedance
  NodeId tx_pad = 0;
  NodeId rx_pad = 0;
};

/// Total channel capacitance (line + lumped elements + receiver input):
/// the quantity that sets channel charging power.
double channel_capacitance(const LinkSpec& s) {
  double c = s.line.self.C * s.length_um * 1e-6;
  for (const auto& e : s.pre_elements) c += e.C;
  for (const auto& e : s.post_elements) c += e.C;
  return c + s.rx.c_in_farad;
}

/// Build one driver->channel->receiver chain. When `agg_in`/`agg2_in` are
/// provided and the link is lateral, the three lines run coupled.
ChannelNodes build_victim_channel(Circuit& ckt, const LinkSpec& s, const Stimulus& stim,
                                  NodeId* line_in_out = nullptr, NodeId ref = kGround) {
  ChannelNodes n;
  n.v_ideal = ckt.add_node("tx_ideal");
  ckt.add_vsource(n.v_ideal, ref, stim, "vtx");
  n.tx_pad = ckt.add_node("tx_pad");
  ckt.add_resistor(n.v_ideal, n.tx_pad, s.tx.r_out_ohm, "r_tx");

  NodeId cur = n.tx_pad;
  int idx = 0;
  for (const auto& e : s.pre_elements) {
    cur = extract::build_lumped(ckt, cur, e, "pre" + std::to_string(idx++));
  }
  if (line_in_out != nullptr) {
    *line_in_out = cur;  // caller splices the (coupled) line here
    return n;
  }
  if (s.length_um > 0) {
    const int sections = extract::recommended_sections(s.length_um, s.bit_rate_hz, s.line.self);
    cur = extract::build_line(ckt, cur, s.line.self, s.length_um, sections, "line");
  }
  idx = 0;
  for (const auto& e : s.post_elements) {
    cur = extract::build_lumped(ckt, cur, e, "post" + std::to_string(idx++));
  }
  n.rx_pad = cur;
  ckt.add_capacitor(n.rx_pad, kGround, s.rx.c_in_farad, "c_rx");
  return n;
}

Stimulus bit_stimulus(const LinkSpec& s, const std::vector<int>& bits) {
  const double ui = 1.0 / s.bit_rate_hz;
  return Stimulus::bits(bits, ui, std::min(s.tx.edge_time_s, 0.8 * ui), 0.0, s.tx.vdd);
}

}  // namespace

LinkResult simulate_link(const LinkSpec& spec) {
  GIA_SPAN("signal/link_sim");
  Circuit ckt;
  // Single rising edge, delayed so the line is quiet first.
  const double t0 = 0.1e-9;
  const auto stim = Stimulus::pulse(0.0, spec.tx.vdd, t0, spec.tx.edge_time_s, spec.tx.edge_time_s,
                                    /*width*/ 1.0, /*period*/ 0.0);
  const auto nodes = build_victim_channel(ckt, spec, stim);

  circuit::TransientSpec tr;
  // Resolve the fastest of: the edge, the line time of flight.
  const double tof = spec.length_um * 1e-6 * std::sqrt(spec.line.self.L * spec.line.self.C);
  tr.dt = std::max(std::min(spec.tx.edge_time_s / 25.0, 1e-12 + tof / 200.0), 0.1e-12);
  tr.t_stop = t0 + spec.tx.edge_time_s + 10.0 * tof + 1.5e-9;
  tr.probes = {nodes.v_ideal, nodes.rx_pad};
  tr.record_vsource_currents = true;
  const auto res = circuit::run_transient(ckt, tr);

  const auto& v_in = res.node_v[0];
  const auto& v_out = res.node_v[1];
  LinkResult out;
  // Near-zero-length channels switch within the same timestep as the
  // driver, so search the output crossing from slightly before the input
  // crossing and clamp at zero rather than demanding strict ordering.
  const double mid = 0.5 * spec.tx.vdd;
  const auto t_in = v_in.crossing(mid, 0.0, +1);
  if (!t_in) throw std::runtime_error("driver never switched -- bad stimulus?");
  const auto t_out = v_out.crossing(mid, *t_in - 3.0 * tr.dt, +1);
  if (!t_out) throw std::runtime_error("link never switched -- channel broken?");
  out.interconnect_delay_s = std::max(0.0, *t_out - *t_in);
  out.driver_delay_s = spec.tx.intrinsic_delay_s + spec.rx.intrinsic_delay_s;
  out.total_delay_s = out.driver_delay_s + out.interconnect_delay_s;

  // Energy drawn from the TX supply across the edge = C_ch * Vdd^2 (plus
  // resistive losses); rising edges occur at 1/4 the bit rate on random
  // data. vsrc current convention: current INTO the + terminal is positive,
  // so supplied power is -v*i.
  const double e_edge = -circuit::average_power(v_in, res.vsrc_i[0]) * v_in.duration();
  out.interconnect_power_w = e_edge * 0.25 * spec.bit_rate_hz;
  out.driver_power_w = driver_internal_power(spec.tx, AibFootprint{}, spec.bit_rate_hz);
  out.total_power_w = out.driver_power_w + out.interconnect_power_w;
  return out;
}

PrbsRun run_prbs(const LinkSpec& spec, int n_bits, unsigned seed) {
  if (n_bits < 8) throw std::invalid_argument("need >= 8 bits for an eye");
  Circuit ckt;
  const auto victim_bits = prbs7(n_bits, 0x5A + seed);
  const auto agg_bits_1 = prbs7(n_bits, 0x13 + seed * 7);
  const auto agg_bits_2 = prbs7(n_bits, 0x2F + seed * 13);

  // Shared return path for SSO stress: every driver references `ret`
  // instead of ideal ground, so switching currents bounce the rail. A bank
  // branch models the other (sso_lanes) lanes of the bus, each driving its
  // own channel-equivalent load through the same return.
  NodeId ret = kGround;
  if (spec.shared_return_l > 0) {
    ret = ckt.add_node("sso_ret");
    const NodeId mid = ckt.add_node("sso_mid");
    ckt.add_inductor(ret, mid, spec.shared_return_l, "l_ret");
    ckt.add_resistor(mid, kGround, 0.05, "r_ret");

    const int lanes = std::max(1, spec.sso_lanes);
    const NodeId bank_drv = ckt.add_node("sso_bank_drv");
    const NodeId bank_out = ckt.add_node("sso_bank_out");
    ckt.add_vsource(bank_drv, ret, bit_stimulus(spec, prbs7(n_bits, 0x71 + seed * 3)),
                    "v_bank");
    ckt.add_resistor(bank_drv, bank_out, spec.tx.r_out_ohm / lanes, "r_bank");
    const double c_lane = std::max(channel_capacitance(spec), 20e-15);
    const NodeId bank_c = ckt.add_node("sso_bank_c");
    ckt.add_resistor(bank_out, bank_c, 1.0, "r_bank_esr");  // load ESR damps ringing
    ckt.add_capacitor(bank_c, kGround, c_lane * lanes, "c_bank");
    // On-die decap between the bouncing return and true ground.
    const NodeId dec = ckt.add_node("sso_decap");
    ckt.add_resistor(ret, dec, 0.2, "r_decap");
    ckt.add_capacitor(dec, kGround, 5e-12, "c_decap");
  }

  const bool lateral = spec.length_um > 0;
  ChannelNodes nodes;
  if (lateral) {
    NodeId line_in = 0;
    nodes = build_victim_channel(ckt, spec, bit_stimulus(spec, victim_bits), &line_in, ret);
    // Aggressor drivers directly at the line (they share the same channel
    // structure; bumps on aggressors are second-order for crosstalk).
    const double r_agg = spec.tx.r_out_ohm;
    NodeId a1 = ckt.add_node("agg1_drv");
    NodeId a2 = ckt.add_node("agg2_drv");
    ckt.add_vsource(a1, ret, bit_stimulus(spec, agg_bits_1), "vagg1");
    ckt.add_vsource(a2, ret, bit_stimulus(spec, agg_bits_2), "vagg2");
    NodeId a1_in = ckt.add_node("agg1_in");
    NodeId a2_in = ckt.add_node("agg2_in");
    ckt.add_resistor(a1, a1_in, r_agg, "r_agg1");
    ckt.add_resistor(a2, a2_in, r_agg, "r_agg2");

    const int sections =
        std::min(extract::recommended_sections(spec.length_um, spec.bit_rate_hz, spec.line.self), 20);
    auto ends = extract::build_coupled_lines(ckt, line_in, a1_in, a2_in, spec.line,
                                             spec.length_um, sections, "cpl");
    NodeId cur = ends.victim_out;
    int idx = 0;
    for (const auto& e : spec.post_elements) {
      cur = extract::build_lumped(ckt, cur, e, "post" + std::to_string(idx++));
    }
    nodes.rx_pad = cur;
    ckt.add_capacitor(nodes.rx_pad, kGround, spec.rx.c_in_farad, "c_rx");
    // Aggressor far ends see receiver loads too.
    ckt.add_capacitor(ends.agg1_out, kGround, spec.rx.c_in_farad, "c_rx_a1");
    ckt.add_capacitor(ends.agg2_out, kGround, spec.rx.c_in_farad, "c_rx_a2");
  } else {
    // Vertical (3D) link: lumped chain with a neighbor aggressor coupled
    // capacitively, modeling the adjacent bump/TSV in the array.
    nodes = build_victim_channel(ckt, spec, bit_stimulus(spec, victim_bits), nullptr, ret);
    NodeId a1 = ckt.add_node("agg_drv");
    ckt.add_vsource(a1, kGround, bit_stimulus(spec, agg_bits_1), "vagg");
    NodeId a_pad = ckt.add_node("agg_pad");
    ckt.add_resistor(a1, a_pad, spec.tx.r_out_ohm, "r_agg");
    NodeId cur = a_pad;
    int idx = 0;
    for (const auto& e : spec.pre_elements) {
      cur = extract::build_lumped(ckt, cur, e, "agg_pre" + std::to_string(idx++));
    }
    for (const auto& e : spec.post_elements) {
      cur = extract::build_lumped(ckt, cur, e, "agg_post" + std::to_string(idx++));
    }
    ckt.add_capacitor(cur, kGround, spec.rx.c_in_farad, "c_rx_agg");
    const double c_couple = spec.lumped_coupling * std::max(channel_capacitance(spec), 1e-18);
    ckt.add_capacitor(nodes.rx_pad, cur, c_couple, "c_xtalk");
  }

  const double ui = 1.0 / spec.bit_rate_hz;
  circuit::TransientSpec tr;
  tr.dt = ui / 256.0;
  tr.t_stop = ui * n_bits;
  tr.probes = {nodes.rx_pad};
  auto res = circuit::run_transient(ckt, tr);

  PrbsRun out;
  out.rx = std::move(res.node_v[0]);
  out.ui_s = ui;
  out.n_bits = n_bits;
  return out;
}

std::vector<PrbsRun> run_prbs_segments(const LinkSpec& spec, int n_bits_per_segment,
                                       int n_segments, unsigned base_seed) {
  GIA_SPAN("signal/prbs_segments");
  if (n_segments < 1) throw std::invalid_argument("need >= 1 segment");
  core::instrument::counter_add(core::instrument::Counter::PrbsSegments,
                                static_cast<std::uint64_t>(n_segments));
  std::vector<PrbsRun> out(static_cast<std::size_t>(n_segments));
  core::parallel_for(static_cast<std::size_t>(n_segments), [&](std::size_t s) {
    out[s] = run_prbs(spec, n_bits_per_segment, base_seed + static_cast<unsigned>(s));
  });
  return out;
}

}  // namespace gia::signal
