#pragma once

#include <complex>
#include <vector>

#include "extract/microstrip.hpp"
#include "extract/via_models.hpp"

/// \file sparams.hpp
/// Two-port network algebra (ABCD form) for the frequency-domain channel
/// view: lossy transmission line segments, lumped series/shunt elements,
/// cascading, and conversion to S-parameters at a reference impedance --
/// mirroring the paper's HFSS/HyperLynx -> S-parameter -> ADS flow.

namespace gia::signal {

using cplx = std::complex<double>;

/// ABCD (chain) matrix of a two-port at one frequency.
struct Abcd {
  cplx A{1, 0}, B{0, 0}, C{0, 0}, D{1, 0};

  /// Cascade: this network followed by `next`.
  Abcd then(const Abcd& next) const;
};

/// Lossy line of physical length `length_um` with per-unit-length RLGC.
Abcd line_abcd(const extract::Rlgc& rlgc, double length_um, double freq_hz);

/// Series impedance Z.
Abcd series_abcd(cplx z);

/// Shunt admittance Y.
Abcd shunt_abcd(cplx y);

/// Lumped via/bump as series R+jwL with half-shunt C at each end.
Abcd lumped_abcd(const extract::LumpedRlc& m, double freq_hz);

/// S-parameters (s11, s21, s12, s22) at reference impedance z0.
struct Sparams {
  cplx s11, s12, s21, s22;
};
Sparams to_sparams(const Abcd& m, double z0 = 50.0);

/// |S21| in dB across a frequency grid for a cascaded channel builder.
std::vector<double> insertion_loss_db(const std::vector<Abcd>& cascade_per_freq);

}  // namespace gia::signal
