#pragma once

/// \file aib.hpp
/// Intel AIB-class I/O driver and receiver models (Fig 6 / Section V-B).
/// The paper uses a pipelined DDR-capable driver synthesized in 28nm,
/// operated SDR at 700 MHz: TX strength x128 with 47.4 ohm output impedance,
/// RX strength x16, supporting lines up to 10 mm. We model the TX as a
/// Thevenin switcher (edge-shaped source behind its output resistance) and
/// the RX as an input capacitance plus a fixed regeneration delay -- the same
/// abstraction the paper's HSPICE testbench uses around the channel model.

namespace gia::signal {

struct DriverModel {
  double strength = 128.0;        ///< drive multiplier (x128)
  double r_out_ohm = 47.4;        ///< output impedance at x128
  double vdd = 0.9;
  double edge_time_s = 50e-12;    ///< 20-80 class output edge
  double intrinsic_delay_s = 36e-12;  ///< input-to-pad delay of the TX chain
  /// Internal (non-load) energy per output transition, calibrated so the
  /// AIB power overhead lands at Table III's ~26-27 uW per active lane.
  double internal_energy_per_edge = 75e-15;

  /// Output impedance scales inversely with strength.
  double r_out_at(double strength_x) const { return r_out_ohm * strength / strength_x; }
};

struct ReceiverModel {
  double strength = 16.0;
  double c_in_farad = 6e-15;          ///< pad + ESD + gate capacitance
  double intrinsic_delay_s = 3.5e-12; ///< regeneration delay
  double threshold = 0.45;            ///< CMOS mid-rail
};

/// Area/power bookkeeping for Table III's AIB overhead rows.
struct AibFootprint {
  double area_um2 = 9.9 * 9.4;  ///< Fig 6(c) layout
  /// Static leakage per driver lane [W].
  double leakage_w = 15e-9;
};

/// Lane power at a toggle rate: internal edge energy times transition rate
/// plus leakage (load power is accounted by the channel simulation).
double driver_internal_power(const DriverModel& d, const AibFootprint& f, double bit_rate_hz,
                             double activity = 0.5);

}  // namespace gia::signal
