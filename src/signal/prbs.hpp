#pragma once

#include <vector>

/// \file prbs.hpp
/// Pseudo-random binary sequences from linear-feedback shift registers --
/// the stimulus for eye-diagram analysis (Section VII-A runs 0.7 Gbps
/// PRBS through the extracted interposer channels).

namespace gia::signal {

/// PRBS-7: x^7 + x^6 + 1, period 127.
std::vector<int> prbs7(int n_bits, unsigned seed = 0x5A);

/// PRBS-15: x^15 + x^14 + 1, period 32767.
std::vector<int> prbs15(int n_bits, unsigned seed = 0x1234);

/// Alternating 0101... pattern (worst case for SSO-style coupling).
std::vector<int> clock_pattern(int n_bits);

}  // namespace gia::signal
