#pragma once

#include "circuit/waveform.hpp"
#include "signal/link_sim.hpp"

/// \file eye.hpp
/// Eye-diagram construction and measurement (Fig 14). The receiver-pad
/// waveform is folded at the unit interval; eye width comes from the spread
/// of threshold crossings, eye height from the worst-case high/low levels at
/// the optimal sampling phase.

namespace gia::signal {

struct EyeResult {
  double width_s = 0;    ///< horizontal opening at the threshold
  double height_v = 0;   ///< vertical opening at the sampling phase
  double ui_s = 0;
  /// Opening ratios (normalized to UI and swing) -- the "% SI improvement"
  /// the paper quotes derives from these.
  double width_ratio() const { return ui_s > 0 ? width_s / ui_s : 0; }

  /// Level statistics at the sampling phase (for Q-factor/BER estimation).
  double mean_high_v = 0, mean_low_v = 0;
  double sigma_high_v = 0, sigma_low_v = 0;

  /// Gaussian Q-factor: (mu1 - mu0) / (sigma1 + sigma0). Large (>= 7) for
  /// clean eyes; clamped at 1e3 when the levels are noiseless.
  double q_factor() const;
  /// BER estimate from the Q-factor, 0.5 * erfc(Q/sqrt(2)).
  double ber_estimate() const;

  /// Folded eye raster for plotting: sample traces, one row per UI.
  std::vector<std::vector<double>> traces;
};

struct EyeConfig {
  double threshold = 0.45;   ///< crossing level [V]
  int skip_bits = 8;         ///< warm-up UIs excluded from the fold
  bool keep_traces = false;  ///< retain folded traces for plotting
};

/// Fold a PRBS run into an eye and measure it.
EyeResult measure_eye(const PrbsRun& run, const EyeConfig& cfg = {});

/// Fold several independent PRBS segments (same link, different seeds) into
/// one eye: crossing phases merge across segments for the width, and level
/// statistics accumulate over every segment's UIs in segment order, so the
/// measurement is deterministic regardless of how the segments were
/// produced.
EyeResult measure_eye_ensemble(const std::vector<PrbsRun>& runs, const EyeConfig& cfg = {});

/// Convenience: simulate the link's PRBS response and measure the eye.
EyeResult simulate_eye(const LinkSpec& spec, int n_bits = 127, const EyeConfig& cfg = {});

/// Convenience: simulate `n_segments` independent PRBS segments in parallel
/// (thread pool) and fold them into one eye. More bits of channel coverage
/// per wall-clock second than one long serial run.
EyeResult simulate_eye_ensemble(const LinkSpec& spec, int n_bits_per_segment, int n_segments,
                                const EyeConfig& cfg = {});

}  // namespace gia::signal
