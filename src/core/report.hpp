#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file report.hpp
/// Minimal aligned-column ASCII table writer used by the benchmark binaries
/// to print the reproduced paper tables.

namespace gia::core {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// First row added is the header.
  Table& row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string eng(double v, const char* unit, int precision = 2);
  static std::string pct(double v, int precision = 1);

  void print(std::ostream& os) const;
  std::string str() const;

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gia::core
