#include "core/stagegraph.hpp"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/canon.hpp"
#include "core/instrument.hpp"
#include "core/json.hpp"
#include "core/links.hpp"
#include "core/parallel.hpp"
#include "partition/hierarchical.hpp"
#include "partition/metrics.hpp"
#include "tech/library.hpp"

namespace gia::core::stage {

using netlist::ChipletSide;

namespace {

/// Registry order is topological: every dependency precedes its dependents.
constexpr std::array<StageInfo, kStageCount> kRegistry = {{
    {StageId::NetlistPartition, "netlist_partition", "flow/netlist_partition", false, 0, {}},
    {StageId::ChipletPnr, "chiplet_pnr", "flow/chiplet_pnr", true, 1,
     {StageId::NetlistPartition}},
    {StageId::Interposer, "interposer", "flow/interposer", true, 1,
     {StageId::NetlistPartition}},
    {StageId::Links, "links", "flow/links", false, 1, {StageId::Interposer}},
    {StageId::Eyes, "eyes", "flow/eyes", false, 1, {StageId::Links}},
    {StageId::Pdn, "pdn", "flow/pdn", true, 1, {StageId::Interposer}},
    {StageId::Thermal, "thermal", "flow/thermal", false, 1, {StageId::Interposer}},
    {StageId::Rollup, "rollup", "flow/rollup", false, 3,
     {StageId::NetlistPartition, StageId::ChipletPnr, StageId::Links}},
}};

/// Mesh/grid growth factor for a K-chiplet system against the legacy 4-die
/// baseline: resolutions scale with the lattice side so cell size stays
/// roughly constant over the bounding floorplan.
int system_mesh_factor(int chiplets) {
  return std::max(1, static_cast<int>(std::ceil(std::sqrt(chiplets / 4.0))));
}

/// The `system.*` knobs a stage reads in generalized N-chiplet mode. Legacy
/// mode writes nothing: legacy stage bodies ignore the system block
/// wholesale, so stage keys (and cached artifacts) stay byte-identical to
/// the pre-system schema. Knobs a stage only consumes through an upstream
/// artifact (e.g. `chiplets` downstream of netlist_partition) are covered by
/// the dep keys and not re-declared.
void write_system_knobs(StageId id, const FlowOptions& o, canon::Writer& w) {
  const chiplet::SystemConfig& s = o.system;
  if (s.is_legacy()) return;
  std::string arrangement = chiplet::to_string(s.arrangement);
  w.begin("system");
  switch (id) {
    case StageId::NetlistPartition:
      w.field("chiplets", s.chiplets);
      // The partition artifact bakes die classes in (extract_part side,
      // partition.side, memory_fraction), so the class pattern is part of
      // the key: requests differing only in memory_every must not alias.
      w.field("memory_every", s.memory_every);
      break;
    case StageId::ChipletPnr:
      w.field("memory_every", s.memory_every);
      w.field("die_scale", s.die_scale);
      w.field("memory_die_scale", s.memory_die_scale);
      break;
    case StageId::Interposer:
      w.line("arrangement", arrangement);
      w.field("memory_every", s.memory_every);
      w.field("die_scale", s.die_scale);
      w.field("memory_die_scale", s.memory_die_scale);
      w.field("pitch_scale", s.pitch_scale);
      w.line("placed", s.placed);
      // Post-schema knob: written only when set so existing grid/hex/placed
      // interposer stage keys (and cached artifacts) stay valid.
      w.token_opt("die_sizes", s.die_sizes, !s.die_sizes.empty(), nullptr);
      break;
    case StageId::Links:
    case StageId::Eyes:
      break;  // fully determined by upstream artifacts
    case StageId::Pdn:
    case StageId::Thermal:
    case StageId::Rollup:
      w.field("memory_every", s.memory_every);
      w.field("power_scale", s.power_scale);
      w.field("memory_power_scale", s.memory_power_scale);
      break;
  }
  w.end();
}

void write_knobs(StageId id, const FlowOptions& o, canon::Writer& w) {
  switch (id) {
    case StageId::NetlistPartition: {
      w.line("partition_mode",
             o.partition_mode == PartitionMode::Hierarchical ? "hierarchical" : "flattened");
      w.begin("openpiton");
      w.field("tiles", o.openpiton.tiles);
      w.field("cluster_cells", o.openpiton.cluster_cells);
      w.field("seed", o.openpiton.seed);
      w.field("intra_nets_per_cluster", o.openpiton.intra_nets_per_cluster);
      w.end();
      w.begin("serdes");
      w.field("ratio", o.serdes.ratio);
      w.field("min_bits", o.serdes.min_bits);
      w.field("cells_per_lane", o.serdes.cells_per_lane);
      w.field("latency_cycles", o.serdes.latency_cycles);
      w.end();
      w.begin("fm");
      w.field("balance_tolerance", o.fm.balance_tolerance);
      w.field("target_memory_fraction", o.fm.target_memory_fraction);
      w.field("max_passes", o.fm.max_passes);
      w.field("seed", o.fm.seed);
      w.end();
      break;
    }
    case StageId::ChipletPnr: {
      w.begin("pnr");
      w.field("target_freq_hz", o.pnr.target_freq_hz);
      w.field("logic_depth", o.pnr.logic_depth);
      w.field("memory_depth", o.pnr.memory_depth);
      w.field("aib_area_per_lane_um2", o.pnr.aib_area_per_lane_um2);
      w.field("aib_duty", o.pnr.aib_duty);
      w.field("tsv_stack_wl_factor", o.pnr.tsv_stack_wl_factor);
      w.begin("placer");
      w.field("packing_util", o.pnr.placer.packing_util);
      w.field("moves_per_cluster", o.pnr.placer.moves_per_cluster);
      w.field("t_start_frac", o.pnr.placer.t_start_frac);
      w.field("cooling", o.pnr.placer.cooling);
      w.field("seed", o.pnr.placer.seed);
      w.end();
      w.begin("congestion");
      w.field("tracks_per_um_per_layer", o.pnr.congestion.tracks_per_um_per_layer);
      w.field("signal_layers", o.pnr.congestion.signal_layers);
      w.field("usable_fraction", o.pnr.congestion.usable_fraction);
      w.field("detour_slope", o.pnr.congestion.detour_slope);
      w.end();
      w.begin("timing");
      w.field("stage_drive_ohm", o.pnr.timing.stage_drive_ohm);
      w.field("crit_net_scale", o.pnr.timing.crit_net_scale);
      w.field("fanout", o.pnr.timing.fanout);
      w.end();
      w.end();
      break;
    }
    case StageId::Interposer: {
      w.begin("router");
      w.field("grid_nx", o.router.grid_nx);
      w.field("grid_ny", o.router.grid_ny);
      w.field("usable_track_fraction", o.router.usable_track_fraction);
      w.field("die_capacity_factor", o.router.die_capacity_factor);
      w.field("congestion_weight", o.router.congestion_weight);
      w.field("via_cost_um", o.router.via_cost_um);
      w.field("wrong_way_penalty", o.router.wrong_way_penalty);
      w.field("overflow_penalty", o.router.overflow_penalty);
      w.field("reroute_passes", o.router.reroute_passes);
      // Post-schema knob: written only when set (see system.die_sizes).
      w.field_opt("any_angle", o.router.any_angle, o.router.any_angle);
      w.end();
      break;
    }
    case StageId::Links:
      break;  // fully determined by the interposer artifact
    case StageId::Eyes: {
      w.field("with_eyes", o.with_eyes);
      w.field("eye_bits", o.eye_bits);
      break;
    }
    case StageId::Pdn:
      break;  // fully determined by technology + interposer artifact
    case StageId::Thermal: {
      w.field("with_thermal", o.with_thermal);
      w.begin("thermal_mesh");
      w.field("nx", o.thermal_mesh.nx);
      w.field("ny", o.thermal_mesh.ny);
      w.field("logic_power_w", o.thermal_mesh.logic_power_w);
      w.field("memory_power_w", o.thermal_mesh.memory_power_w);
      w.field("interposer_power_w", o.thermal_mesh.interposer_power_w);
      w.field("board_margin_frac", o.thermal_mesh.board_margin_frac);
      w.field("thermal_via_fraction", o.thermal_mesh.thermal_via_fraction);
      w.field("board_thickness_um", o.thermal_mesh.board_thickness_um);
      w.field("board_k", o.thermal_mesh.board_k);
      w.field("power_seed", o.thermal_mesh.power_seed);
      w.end();
      break;
    }
    case StageId::Rollup: {
      w.field("rollup_activity_scale", o.rollup_activity_scale);
      w.begin("pnr");
      w.field("target_freq_hz", o.pnr.target_freq_hz);
      w.end();
      break;
    }
  }
  write_system_knobs(id, o, w);
}

// --- Process-wide stage-artifact cache: sharded LRU over type-erased
// artifact pointers, with in-flight coalescing (a concurrent second
// computation of the same key blocks on the first instead of duplicating
// the work). Counters are always live (the serving layer reports them with
// tracing off); the instrument-layer counters are additionally fed when
// tracing is on.

using ArtifactPtr = std::shared_ptr<const void>;

class StageCache {
 public:
  static constexpr int kShards = 8;
  static constexpr std::size_t kDefaultCapacity = 128;

  StageCache() {
    const char* env = std::getenv("GIA_STAGE_CACHE");
    if (env != nullptr && env[0] != '\0') {
      const std::string v = env;
      if (v == "0" || v == "off" || v == "no" || v == "false") {
        enabled_.store(false, std::memory_order_relaxed);
      } else {
        char* end = nullptr;
        const unsigned long long n = std::strtoull(env, &end, 10);
        if (end != nullptr && *end == '\0' && n > 0) {
          capacity_.store(static_cast<std::size_t>(n), std::memory_order_relaxed);
        }
      }
    }
  }

  ArtifactPtr get_or_compute(StageId id, std::uint64_t key, StageRunRecord::Outcome* outcome,
                             const std::function<ArtifactPtr()>& compute) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      *outcome = StageRunRecord::Outcome::Computed;
      return compute();
    }
    Shard& sh = shards_[shard_of(key)];
    std::unique_lock<std::mutex> lk(sh.mu);
    if (auto it = sh.map.find(key); it != sh.map.end()) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      ArtifactPtr art = it->second->artifact;  // copy under the lock
      lk.unlock();
      count(hits_, id);
      instrument::counter_add(instrument::Counter::StageCacheHits);
      *outcome = StageRunRecord::Outcome::CacheHit;
      return art;
    }
    if (auto p = sh.pending.find(key); p != sh.pending.end()) {
      auto fut = p->second;
      lk.unlock();
      count(coalesced_, id);
      instrument::counter_add(instrument::Counter::StageCacheHits);
      *outcome = StageRunRecord::Outcome::Coalesced;
      return fut.get();  // rethrows the computing thread's exception
    }
    std::promise<ArtifactPtr> prom;
    sh.pending.emplace(key, prom.get_future().share());
    lk.unlock();

    count(misses_, id);
    instrument::counter_add(instrument::Counter::StageCacheMisses);
    *outcome = StageRunRecord::Outcome::Computed;
    ArtifactPtr art;
    try {
      art = compute();
    } catch (...) {
      lk.lock();
      sh.pending.erase(key);
      lk.unlock();
      prom.set_exception(std::current_exception());
      throw;
    }

    lk.lock();
    sh.pending.erase(key);
    if (sh.map.find(key) == sh.map.end()) {
      sh.lru.push_front({key, id, art});
      sh.map.emplace(key, sh.lru.begin());
      const std::size_t cap =
          std::max<std::size_t>(1, capacity_.load(std::memory_order_relaxed) / kShards);
      while (sh.lru.size() > cap) {
        const Node& victim = sh.lru.back();
        count(evictions_, victim.stage);
        sh.map.erase(victim.key);
        sh.lru.pop_back();
      }
    }
    lk.unlock();
    prom.set_value(art);
    return art;
  }

  StageCacheStats stats() const {
    StageCacheStats s;
    s.enabled = enabled_.load(std::memory_order_relaxed);
    s.capacity = capacity_.load(std::memory_order_relaxed);
    for (int i = 0; i < kStageCount; ++i) {
      s.stage[static_cast<std::size_t>(i)].hits = hits_[static_cast<std::size_t>(i)].load();
      s.stage[static_cast<std::size_t>(i)].misses = misses_[static_cast<std::size_t>(i)].load();
      s.stage[static_cast<std::size_t>(i)].evictions =
          evictions_[static_cast<std::size_t>(i)].load();
      s.stage[static_cast<std::size_t>(i)].coalesced =
          coalesced_[static_cast<std::size_t>(i)].load();
    }
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.mu);
      s.entries += sh.lru.size();
    }
    return s;
  }

  void clear() {
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.mu);
      sh.map.clear();
      sh.lru.clear();
      // pending computations are left to finish; their artifacts insert
      // into the now-empty store.
    }
    for (auto& c : hits_) c.store(0);
    for (auto& c : misses_) c.store(0);
    for (auto& c : evictions_) c.store(0);
    for (auto& c : coalesced_) c.store(0);
  }

  /// Passive residency probe: true when `key` is stored or in flight.
  /// No LRU touch, no counter updates -- callers (the dse:: cache-aware
  /// batch ordering) must not perturb hit/miss accounting or recency.
  bool resident(std::uint64_t key) const {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    const Shard& sh = shards_[shard_of(key)];
    std::lock_guard<std::mutex> lk(sh.mu);
    return sh.map.find(key) != sh.map.end() || sh.pending.find(key) != sh.pending.end();
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  void set_capacity(std::size_t n) {
    capacity_.store(std::max<std::size_t>(1, n), std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::uint64_t key = 0;
    StageId stage = StageId::NetlistPartition;
    ArtifactPtr artifact;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Node> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Node>::iterator> map;
    /// In-flight computations; a second caller of the same key waits here.
    std::unordered_map<std::uint64_t, std::shared_future<ArtifactPtr>> pending;
  };

  static int shard_of(std::uint64_t key) {
    // The low bits feed the hash map; pick shard from high bits.
    return static_cast<int>(key >> 61u) & (kShards - 1);
  }

  using CounterArray = std::array<std::atomic<std::uint64_t>, kStageCount>;
  static void count(CounterArray& arr, StageId id) {
    arr[static_cast<std::size_t>(idx(id))].fetch_add(1, std::memory_order_relaxed);
  }

  std::array<Shard, kShards> shards_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  CounterArray hits_{}, misses_{}, evictions_{}, coalesced_{};
};

StageCache& cache() {
  static StageCache c;
  return c;
}

// --- Stage bodies. Each is the exact computation the former monolithic
// run_full_flow performed, reading only its declared inputs.

struct Ctx {
  tech::TechnologyKind kind;
  const FlowOptions& opts;
  StageKeys keys;
  std::array<ArtifactPtr, kStageCount> art{};
};

template <typename T>
const T& dep(const Ctx& c, StageId id) {
  return *static_cast<const T*>(c.art[static_cast<std::size_t>(idx(id))].get());
}

/// One link study (spec + simulation) for either top-net kind -- the l2m
/// and l2l halves of Table V share this path; eye diagrams are the
/// separate `eyes` stage.
LinkStudy link_study(const interposer::InterposerDesign& design, interposer::TopNetKind kind) {
  LinkStudy s;
  s.spec = make_link_spec(design, kind);
  s.result = signal::simulate_link(s.spec);
  return s;
}

ArtifactPtr run_stage(const Ctx& c, StageId id) {
  instrument::counter_add(instrument::Counter::StageRuns);
  const FlowOptions& o = c.opts;
  switch (id) {
    case StageId::NetlistPartition: {
      auto a = std::make_shared<NetlistPartitionArtifact>();
      if (!o.system.is_legacy()) {
        // Generalized K-way mode: one netlist tile per chiplet, K-way
        // min-cut assignment, per-chiplet views and pairwise wire demand.
        const int k = o.system.chiplets;
        netlist::OpenPitonConfig op = o.openpiton;
        op.tiles = k;
        a->net = netlist::build_openpiton(op);
        a->serdes = netlist::apply_serdes(a->net, o.serdes);
        partition::KwayConfig kc;
        kc.parts = k;
        kc.balance_tolerance = o.fm.balance_tolerance;
        kc.max_passes = o.fm.max_passes;
        kc.seed = o.fm.seed;
        a->kway = partition::kway_partition(a->net, kc);
        a->pairs = partition::pair_cuts(a->net, a->kway.part, k);
        a->parts.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          const ChipletSide cls =
              o.system.memory_class(i) ? ChipletSide::Memory : ChipletSide::Logic;
          a->parts.push_back(netlist::extract_part(a->net, a->kway.part, i, cls));
        }
        // Legacy-shaped summary so TechnologyResult consumers keep working:
        // every instance carries its chiplet's die class.
        a->partition.side.resize(a->kway.part.size());
        for (std::size_t j = 0; j < a->kway.part.size(); ++j) {
          a->partition.side[j] = o.system.memory_class(a->kway.part[j])
                                     ? ChipletSide::Memory
                                     : ChipletSide::Logic;
        }
        a->partition.cut_wires = static_cast<int>(a->kway.cut_wires);
        a->partition.memory_fraction =
            partition::memory_cell_fraction(a->net, a->partition.side);
        return a;
      }
      a->net = netlist::build_openpiton(o.openpiton);
      a->serdes = netlist::apply_serdes(a->net, o.serdes);
      a->partition = o.partition_mode == PartitionMode::Hierarchical
                         ? partition::hierarchical_partition(a->net)
                         : partition::fm_partition(a->net, o.fm);
      a->logic_nl = netlist::extract_chiplet(a->net, a->partition.side, ChipletSide::Logic, 0);
      a->mem_nl = netlist::extract_chiplet(a->net, a->partition.side, ChipletSide::Memory, 0);
      return a;
    }
    case StageId::ChipletPnr: {
      const auto& np = dep<NetlistPartitionArtifact>(c, StageId::NetlistPartition);
      const tech::Technology technology = tech::make_technology(c.kind);
      auto a = std::make_shared<ChipletPnrArtifact>();
      if (!o.system.is_legacy()) {
        const int k = o.system.chiplets;
        std::vector<chiplet::BumpPlan> plans(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          const auto& part = np.parts[static_cast<std::size_t>(i)];
          plans[static_cast<std::size_t>(i)] = chiplet::plan_bumps(
              std::max(1, part.io_signals), part.cell_area_um2 * o.system.die_scale_of(i),
              o.system.memory_class(i), technology);
        }
        a->sys_pnr.resize(static_cast<std::size_t>(k));
        parallel_for(static_cast<std::size_t>(k), [&](std::size_t i) {
          a->sys_pnr[i] = chiplet::run_chiplet_pnr(np.net, np.parts[i], technology, plans[i],
                                                   o.pnr);
        });
        // Table II/III representatives: first logic-class and first
        // memory-class chiplet (last chiplet in single-class systems).
        a->plans.logic = plans.front();
        a->plans.memory = plans.back();
        a->logic = a->sys_pnr.front();
        a->memory = a->sys_pnr.back();
        for (int i = 0; i < k; ++i) {
          if (o.system.memory_class(i)) {
            a->plans.memory = plans[static_cast<std::size_t>(i)];
            a->memory = a->sys_pnr[static_cast<std::size_t>(i)];
            break;
          }
        }
        return a;
      }
      a->plans = chiplet::plan_chiplet_pair(np.logic_nl.io_signals, np.mem_nl.io_signals,
                                            np.logic_nl.cell_area_um2, np.mem_nl.cell_area_um2,
                                            technology);
      a->logic = chiplet::run_chiplet_pnr(np.net, np.logic_nl, technology, a->plans.logic, o.pnr);
      a->memory = chiplet::run_chiplet_pnr(np.net, np.mem_nl, technology, a->plans.memory, o.pnr);
      return a;
    }
    case StageId::Interposer: {
      const auto& np = dep<NetlistPartitionArtifact>(c, StageId::NetlistPartition);
      if (!o.system.is_legacy()) {
        const int k = o.system.chiplets;
        interposer::SystemInputs si;
        si.signal_ios.reserve(static_cast<std::size_t>(k));
        si.cell_area_um2.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          const auto& part = np.parts[static_cast<std::size_t>(i)];
          si.signal_ios.push_back(part.io_signals);
          si.cell_area_um2.push_back(part.cell_area_um2);
        }
        si.pairs.reserve(np.pairs.size());
        for (const auto& pc : np.pairs) si.pairs.push_back({pc.a, pc.b, pc.wires});
        auto a = std::make_shared<InterposerArtifact>();
        a->design = interposer::build_system_design(c.kind, o.system, si, o.router);
        return a;
      }
      interposer::ChipletInputs inputs;
      inputs.logic_signal_ios = np.logic_nl.io_signals;
      inputs.memory_signal_ios = np.mem_nl.io_signals;
      inputs.logic_cell_area_um2 = np.logic_nl.cell_area_um2;
      inputs.memory_cell_area_um2 = np.mem_nl.cell_area_um2;
      auto a = std::make_shared<InterposerArtifact>();
      a->design = interposer::build_interposer_design(c.kind, inputs, o.router);
      return a;
    }
    case StageId::Links: {
      const auto& ip = dep<InterposerArtifact>(c, StageId::Interposer);
      auto a = std::make_shared<LinksArtifact>();
      a->l2m = link_study(ip.design, interposer::TopNetKind::LogicToMemory);
      a->l2l = link_study(ip.design, interposer::TopNetKind::LogicToLogic);
      return a;
    }
    case StageId::Eyes: {
      auto a = std::make_shared<EyesArtifact>();
      if (o.with_eyes) {
        const auto& ln = dep<LinksArtifact>(c, StageId::Links);
        a->l2m = signal::simulate_eye(ln.l2m.spec, o.eye_bits);
        a->l2l = signal::simulate_eye(ln.l2l.spec, o.eye_bits);
      }
      return a;
    }
    case StageId::Pdn: {
      const auto& ip = dep<InterposerArtifact>(c, StageId::Interposer);
      auto a = std::make_shared<PdnArtifact>();
      a->model = pdn::build_pdn_model(ip.design);
      a->impedance = pdn::impedance_profile(a->model);
      if (ip.design.technology.has_interposer()) {
        if (!o.system.is_legacy()) {
          // Load current scales with the system's power classes (legacy
          // baseline: 4 unit-power dies); the mesh tracks the bounding
          // floorplan so cell size stays roughly constant.
          pdn::IrDropOptions io;
          double power_units = 0;
          for (int i = 0; i < o.system.chiplets; ++i) power_units += o.system.power_scale_of(i);
          io.total_current_a *= power_units / 4.0;
          io.grid_n = std::min(96, io.grid_n * system_mesh_factor(o.system.chiplets));
          a->ir_drop = pdn::solve_ir_drop(ip.design, io);
        } else {
          a->ir_drop = pdn::solve_ir_drop(ip.design);
        }
      }
      a->settling = pdn::simulate_settling(a->model);
      return a;
    }
    case StageId::Thermal: {
      auto a = std::make_shared<ThermalArtifact>();
      if (o.with_thermal) {
        const auto& ip = dep<InterposerArtifact>(c, StageId::Interposer);
        if (!o.system.is_legacy()) {
          thermal::MeshOptions mo = o.thermal_mesh;
          mo.logic_power_w *= o.system.power_scale;
          mo.memory_power_w *= o.system.power_scale * o.system.memory_power_scale;
          const int f = system_mesh_factor(o.system.chiplets);
          mo.nx = std::min(192, mo.nx * f);
          mo.ny = std::min(192, mo.ny * f);
          a->report = thermal::run_thermal(ip.design, mo);
        } else {
          a->report = thermal::run_thermal(ip.design, o.thermal_mesh);
        }
      }
      return a;
    }
    case StageId::Rollup: {
      const auto& np = dep<NetlistPartitionArtifact>(c, StageId::NetlistPartition);
      const auto& pn = dep<ChipletPnrArtifact>(c, StageId::ChipletPnr);
      const auto& ln = dep<LinksArtifact>(c, StageId::Links);
      auto a = std::make_shared<RollupArtifact>();
      if (!o.system.is_legacy()) {
        double chip_power_w = 0;
        double fmax = std::numeric_limits<double>::infinity();
        for (int i = 0; i < o.system.chiplets; ++i) {
          const auto& pr = pn.sys_pnr[static_cast<std::size_t>(i)];
          chip_power_w += pr.power.total_w * o.system.power_scale_of(i);
          fmax = std::min(fmax, pr.fmax_hz);
        }
        // Lane wires by class: a pair with exactly one memory-class endpoint
        // carries L2M lanes, all others L2L.
        long l2m_wires = 0, l2l_wires = 0;
        for (const auto& pc : np.pairs) {
          const bool mixed = o.system.memory_class(pc.a) != o.system.memory_class(pc.b);
          (mixed ? l2m_wires : l2l_wires) += pc.wires;
        }
        const double lane_l2m = ln.l2m.result.driver_power_w +
                                o.rollup_activity_scale * ln.l2m.result.interconnect_power_w;
        const double lane_l2l = ln.l2l.result.driver_power_w +
                                o.rollup_activity_scale * ln.l2l.result.interconnect_power_w;
        a->total_power_w = chip_power_w + static_cast<double>(l2m_wires) * lane_l2m +
                           static_cast<double>(l2l_wires) * lane_l2l;
        a->system_fmax_hz = fmax;
        const double period = 1.0 / o.pnr.target_freq_hz;
        a->link_timing_met = ln.l2m.result.total_delay_s < period &&
                             ln.l2l.result.total_delay_s < period;
        return a;
      }
      const int l2m_lanes = 2 * np.mem_nl.io_signals;
      const int l2l_lanes = np.serdes.wires_after;
      const double lane_power_l2m = ln.l2m.result.driver_power_w +
                                    o.rollup_activity_scale * ln.l2m.result.interconnect_power_w;
      const double lane_power_l2l = ln.l2l.result.driver_power_w +
                                    o.rollup_activity_scale * ln.l2l.result.interconnect_power_w;
      a->total_power_w = 2.0 * (pn.logic.power.total_w + pn.memory.power.total_w) +
                         l2m_lanes * lane_power_l2m + l2l_lanes * lane_power_l2l;
      a->system_fmax_hz = std::min(pn.logic.fmax_hz, pn.memory.fmax_hz);
      const double period = 1.0 / o.pnr.target_freq_hz;
      a->link_timing_met = ln.l2m.result.total_delay_s < period &&
                           ln.l2l.result.total_delay_s < period;
      return a;
    }
  }
  throw std::logic_error("unknown stage");
}

/// Execution waves: stages grouped by dependency depth. Within a wave every
/// stage's inputs are complete, so the wave runs through core/parallel.
std::vector<std::vector<StageId>> make_waves() {
  std::array<int, kStageCount> depth{};
  int max_depth = 0;
  for (const StageInfo& si : kRegistry) {  // registry order is topological
    int d = 0;
    for (int i = 0; i < si.dep_count; ++i) {
      d = std::max(d, depth[static_cast<std::size_t>(idx(si.deps[static_cast<std::size_t>(i)]))] + 1);
    }
    depth[static_cast<std::size_t>(idx(si.id))] = d;
    max_depth = std::max(max_depth, d);
  }
  std::vector<std::vector<StageId>> waves(static_cast<std::size_t>(max_depth + 1));
  for (const StageInfo& si : kRegistry) {
    waves[static_cast<std::size_t>(depth[static_cast<std::size_t>(idx(si.id))])].push_back(si.id);
  }
  return waves;
}

const std::vector<std::vector<StageId>>& waves() {
  static const std::vector<std::vector<StageId>> w = make_waves();
  return w;
}

}  // namespace

const std::array<StageInfo, kStageCount>& registry() { return kRegistry; }

const StageInfo& info(StageId id) { return kRegistry[static_cast<std::size_t>(idx(id))]; }

const char* stage_name(StageId id) { return info(id).name; }

bool parse_stage(const std::string& name, StageId* out) {
  for (const StageInfo& si : kRegistry) {
    if (name == si.name) {
      *out = si.id;
      return true;
    }
  }
  return false;
}

std::string stage_knob_text(StageId id, const FlowOptions& opts) {
  canon::Writer w;
  write_knobs(id, opts, w);
  return w.out;
}

StageKeys compute_stage_keys(tech::TechnologyKind kind, const FlowOptions& opts) {
  StageKeys ks;
  for (const StageInfo& si : kRegistry) {  // topological: dep keys are ready
    canon::Writer w;
    w.line("stage", si.name);
    if (si.reads_tech) w.line("tech", tech::short_name(kind));
    w.begin("dep");
    for (int i = 0; i < si.dep_count; ++i) {
      const StageId d = si.deps[static_cast<std::size_t>(i)];
      w.line(stage_name(d), canon::key_hex(ks.of(d)));
    }
    w.end();
    write_knobs(si.id, opts, w);
    ks.key[static_cast<std::size_t>(idx(si.id))] = canon::fnv1a64(w.out);
  }
  return ks;
}

std::uint64_t StageRunRecord::hits() const {
  std::uint64_t n = 0;
  for (const Outcome oc : outcome) n += oc != Outcome::Computed ? 1 : 0;
  return n;
}

std::uint64_t StageRunRecord::misses() const {
  return static_cast<std::uint64_t>(kStageCount) - hits();
}

TechnologyResult execute_flow(tech::TechnologyKind kind, const FlowOptions& opts,
                              StageRunRecord* record) {
  if (kind == tech::TechnologyKind::Monolithic2D) {
    throw std::invalid_argument("use run_monolithic_reference for the 2D reference");
  }
  chiplet::validate_system(opts.system);
  if (!opts.system.is_legacy()) {
    const tech::Technology t = tech::make_technology(kind);
    if (t.integration != tech::IntegrationStyle::SideBySide &&
        t.integration != tech::IntegrationStyle::EmbeddedDie) {
      throw std::invalid_argument(
          "N-chiplet arrangements need an interposer technology (2.5D or embedded-die): " +
          std::string(tech::short_name(kind)));
    }
  }
  Ctx c{kind, opts, compute_stage_keys(kind, opts), {}};
  for (const auto& wave : waves()) {
    const auto run_one = [&](std::size_t wi) {
      const StageId id = wave[wi];
      instrument::ScopedSpan span(info(id).span_name);
      StageRunRecord::Outcome oc;
      c.art[static_cast<std::size_t>(idx(id))] =
          cache().get_or_compute(id, c.keys.of(id), &oc, [&] { return run_stage(c, id); });
      if (record != nullptr) record->outcome[static_cast<std::size_t>(idx(id))] = oc;
    };
    if (wave.size() == 1) {
      run_one(0);
    } else {
      parallel_for(wave.size(), run_one);
    }
  }

  TechnologyResult r;
  r.technology = tech::make_technology(kind);
  const auto& np = dep<NetlistPartitionArtifact>(c, StageId::NetlistPartition);
  r.serdes = np.serdes;
  r.partition = np.partition;
  const auto& pn = dep<ChipletPnrArtifact>(c, StageId::ChipletPnr);
  r.plans = pn.plans;
  r.logic = pn.logic;
  r.memory = pn.memory;
  r.interposer = dep<InterposerArtifact>(c, StageId::Interposer).design;
  const auto& ln = dep<LinksArtifact>(c, StageId::Links);
  r.l2m = ln.l2m;
  r.l2l = ln.l2l;
  const auto& ey = dep<EyesArtifact>(c, StageId::Eyes);
  r.l2m.eye = ey.l2m;
  r.l2l.eye = ey.l2l;
  const auto& pd = dep<PdnArtifact>(c, StageId::Pdn);
  r.pdn_model = pd.model;
  r.pdn_impedance = pd.impedance;
  r.ir_drop = pd.ir_drop;
  r.settling = pd.settling;
  r.thermal = dep<ThermalArtifact>(c, StageId::Thermal).report;
  const auto& ru = dep<RollupArtifact>(c, StageId::Rollup);
  r.total_power_w = ru.total_power_w;
  r.system_fmax_hz = ru.system_fmax_hz;
  r.link_timing_met = ru.link_timing_met;
  return r;
}

std::uint64_t StageCacheStats::total_hits() const {
  std::uint64_t n = 0;
  for (const PerStage& s : stage) n += s.hits;
  return n;
}
std::uint64_t StageCacheStats::total_misses() const {
  std::uint64_t n = 0;
  for (const PerStage& s : stage) n += s.misses;
  return n;
}
std::uint64_t StageCacheStats::total_evictions() const {
  std::uint64_t n = 0;
  for (const PerStage& s : stage) n += s.evictions;
  return n;
}
std::uint64_t StageCacheStats::total_coalesced() const {
  std::uint64_t n = 0;
  for (const PerStage& s : stage) n += s.coalesced;
  return n;
}

StageCacheStats stage_cache_stats() { return cache().stats(); }

std::string stage_cache_stats_json() {
  const StageCacheStats s = stage_cache_stats();
  std::string out = "{\"enabled\":";
  json::append_bool(s.enabled, out);
  out += ",\"entries\":";
  json::append_u64(s.entries, out);
  out += ",\"capacity\":";
  json::append_u64(s.capacity, out);
  out += ",\"hits\":";
  json::append_u64(s.total_hits(), out);
  out += ",\"misses\":";
  json::append_u64(s.total_misses(), out);
  out += ",\"evictions\":";
  json::append_u64(s.total_evictions(), out);
  out += ",\"coalesced\":";
  json::append_u64(s.total_coalesced(), out);
  out += ",\"stages\":{";
  bool first = true;
  for (const StageInfo& si : kRegistry) {
    const auto& ps = s.stage[static_cast<std::size_t>(idx(si.id))];
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += si.name;
    out += "\":{\"hits\":";
    json::append_u64(ps.hits, out);
    out += ",\"misses\":";
    json::append_u64(ps.misses, out);
    out += ",\"evictions\":";
    json::append_u64(ps.evictions, out);
    out += ",\"coalesced\":";
    json::append_u64(ps.coalesced, out);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

bool stage_cache_resident(std::uint64_t key) { return cache().resident(key); }
void stage_cache_clear() { cache().clear(); }
bool stage_cache_enabled() { return cache().enabled(); }
void set_stage_cache_enabled(bool on) { cache().set_enabled(on); }
std::size_t stage_cache_capacity() { return cache().capacity(); }
void set_stage_cache_capacity(std::size_t entries) { cache().set_capacity(entries); }

}  // namespace gia::core::stage
