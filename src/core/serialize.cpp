#include "core/serialize.hpp"

#include <stdexcept>

#include "tech/library.hpp"

namespace gia::core {

namespace {

// Writer helpers: `key(out, "name")` then one value appender. Keys are
// emitted in a fixed order so the output is canonical.
void key(std::string& out, const char* k) {
  if (out.back() != '{' && out.back() != '[') out.push_back(',');
  json::escape(k, out);
  out.push_back(':');
}

void put_d(std::string& out, const char* k, double v) {
  key(out, k);
  json::append_double(v, out);
}
void put_i(std::string& out, const char* k, std::int64_t v) {
  key(out, k);
  json::append_i64(v, out);
}
void put_b(std::string& out, const char* k, bool v) {
  key(out, k);
  json::append_bool(v, out);
}
void put_s(std::string& out, const char* k, const std::string& v) {
  key(out, k);
  json::escape(v, out);
}

void serdes_json(std::string& out, const netlist::SerDesReport& s) {
  out += "{";
  put_i(out, "buses_serialized", s.buses_serialized);
  put_i(out, "wires_before", s.wires_before);
  put_i(out, "wires_after", s.wires_after);
  put_i(out, "serdes_instances_added", s.serdes_instances_added);
  put_i(out, "added_cells", s.added_cells);
  put_i(out, "latency_cycles", s.latency_cycles);
  out += "}";
}

void bump_plan_json(std::string& out, const chiplet::BumpPlan& p) {
  out += "{";
  put_i(out, "signal_bumps", p.signal_bumps);
  put_i(out, "pg_bumps", p.pg_bumps);
  put_d(out, "width_um", p.width_um);
  put_b(out, "bump_limited", p.bump_limited);
  out += "}";
}

void pnr_json(std::string& out, const chiplet::ChipletPnrResult& c) {
  out += "{";
  put_s(out, "side", c.side == netlist::ChipletSide::Logic ? "logic" : "memory");
  put_d(out, "fmax_hz", c.fmax_hz);
  put_d(out, "footprint_um", c.footprint_um);
  put_i(out, "cell_count", c.cell_count);
  put_d(out, "utilization", c.utilization);
  put_d(out, "wirelength_m", c.wirelength_m);
  key(out, "power");
  out += "{";
  put_d(out, "internal_w", c.power.internal_w);
  put_d(out, "switching_w", c.power.switching_w);
  put_d(out, "leakage_w", c.power.leakage_w);
  put_d(out, "total_w", c.power.total_w);
  put_d(out, "pin_cap_f", c.power.pin_cap_f);
  put_d(out, "wire_cap_f", c.power.wire_cap_f);
  out += "}";
  key(out, "congestion");
  out += "{";
  put_d(out, "demand_um", c.congestion.demand_um);
  put_d(out, "capacity_um", c.congestion.capacity_um);
  put_d(out, "utilization", c.congestion.utilization);
  put_d(out, "detour_factor", c.congestion.detour_factor);
  out += "}";
  put_i(out, "aib_lanes", c.aib_lanes);
  put_d(out, "aib_area_um2", c.aib_area_um2);
  put_d(out, "aib_area_frac", c.aib_area_frac);
  put_d(out, "aib_power_w", c.aib_power_w);
  put_d(out, "aib_power_frac", c.aib_power_frac);
  put_b(out, "timing_met", c.timing_met);
  out += "}";
}

void interposer_json(std::string& out, const interposer::InterposerDesign& d) {
  out += "{";
  key(out, "outline");
  out += "[";
  json::append_double(d.floorplan.outline.lx, out);
  out += ",";
  json::append_double(d.floorplan.outline.ly, out);
  out += ",";
  json::append_double(d.floorplan.outline.ux, out);
  out += ",";
  json::append_double(d.floorplan.outline.uy, out);
  out += "]";
  const auto& s = d.routes.stats;
  key(out, "route_stats");
  out += "{";
  put_d(out, "total_wl_um", s.total_wl_um);
  put_d(out, "min_wl_um", s.min_wl_um);
  put_d(out, "avg_wl_um", s.avg_wl_um);
  put_d(out, "max_wl_um", s.max_wl_um);
  put_i(out, "total_vias", s.total_vias);
  put_i(out, "vertical_via_pairs", s.vertical_via_pairs);
  put_i(out, "signal_layers_available", s.signal_layers_available);
  put_i(out, "signal_layers_used", s.signal_layers_used);
  put_i(out, "overflowed_cells", s.overflowed_cells);
  put_i(out, "routed_nets", s.routed_nets);
  out += "}";
  out += "}";
}

void link_json(std::string& out, const LinkStudy& l) {
  out += "{";
  put_d(out, "length_um", l.spec.length_um);
  put_d(out, "bit_rate_hz", l.spec.bit_rate_hz);
  key(out, "result");
  out += "{";
  put_d(out, "driver_delay_s", l.result.driver_delay_s);
  put_d(out, "interconnect_delay_s", l.result.interconnect_delay_s);
  put_d(out, "total_delay_s", l.result.total_delay_s);
  put_d(out, "driver_power_w", l.result.driver_power_w);
  put_d(out, "interconnect_power_w", l.result.interconnect_power_w);
  put_d(out, "total_power_w", l.result.total_power_w);
  out += "}";
  key(out, "eye");
  if (l.eye.has_value()) {
    out += "{";
    put_d(out, "width_s", l.eye->width_s);
    put_d(out, "height_v", l.eye->height_v);
    put_d(out, "ui_s", l.eye->ui_s);
    put_d(out, "mean_high_v", l.eye->mean_high_v);
    put_d(out, "mean_low_v", l.eye->mean_low_v);
    put_d(out, "sigma_high_v", l.eye->sigma_high_v);
    put_d(out, "sigma_low_v", l.eye->sigma_low_v);
    out += "}";
  } else {
    out += "null";
  }
  out += "}";
}

void thermal_json(std::string& out, const thermal::ThermalReport& t) {
  out += "{";
  key(out, "dies");
  out += "{";
  for (const auto& [name, die] : t.dies) {
    key(out, name.c_str());
    out += "{";
    put_d(out, "hotspot_c", die.hotspot_c);
    put_d(out, "average_c", die.average_c);
    out += "}";
  }
  out += "}";
  put_d(out, "interposer_hotspot_c", t.interposer_hotspot_c);
  put_d(out, "ambient_c", t.ambient_c);
  put_d(out, "hotspot_spread", t.hotspot_spread);
  out += "}";
}

// --- Readers --------------------------------------------------------------

netlist::SerDesReport serdes_from(const json::Value& v) {
  netlist::SerDesReport s;
  s.buses_serialized = static_cast<int>(v.at("buses_serialized").as_i64());
  s.wires_before = static_cast<int>(v.at("wires_before").as_i64());
  s.wires_after = static_cast<int>(v.at("wires_after").as_i64());
  s.serdes_instances_added = static_cast<int>(v.at("serdes_instances_added").as_i64());
  s.added_cells = static_cast<int>(v.at("added_cells").as_i64());
  s.latency_cycles = static_cast<int>(v.at("latency_cycles").as_i64());
  return s;
}

chiplet::BumpPlan bump_plan_from(const json::Value& v) {
  chiplet::BumpPlan p;
  p.signal_bumps = static_cast<int>(v.at("signal_bumps").as_i64());
  p.pg_bumps = static_cast<int>(v.at("pg_bumps").as_i64());
  p.width_um = v.at("width_um").as_double();
  p.bump_limited = v.at("bump_limited").as_bool();
  return p;
}

chiplet::ChipletPnrResult pnr_from(const json::Value& v) {
  chiplet::ChipletPnrResult c;
  c.side = v.at("side").str == "logic" ? netlist::ChipletSide::Logic
                                       : netlist::ChipletSide::Memory;
  c.fmax_hz = v.at("fmax_hz").as_double();
  c.footprint_um = v.at("footprint_um").as_double();
  c.cell_count = static_cast<long>(v.at("cell_count").as_i64());
  c.utilization = v.at("utilization").as_double();
  c.wirelength_m = v.at("wirelength_m").as_double();
  const json::Value& p = v.at("power");
  c.power.internal_w = p.at("internal_w").as_double();
  c.power.switching_w = p.at("switching_w").as_double();
  c.power.leakage_w = p.at("leakage_w").as_double();
  c.power.total_w = p.at("total_w").as_double();
  c.power.pin_cap_f = p.at("pin_cap_f").as_double();
  c.power.wire_cap_f = p.at("wire_cap_f").as_double();
  const json::Value& g = v.at("congestion");
  c.congestion.demand_um = g.at("demand_um").as_double();
  c.congestion.capacity_um = g.at("capacity_um").as_double();
  c.congestion.utilization = g.at("utilization").as_double();
  c.congestion.detour_factor = g.at("detour_factor").as_double();
  c.aib_lanes = static_cast<int>(v.at("aib_lanes").as_i64());
  c.aib_area_um2 = v.at("aib_area_um2").as_double();
  c.aib_area_frac = v.at("aib_area_frac").as_double();
  c.aib_power_w = v.at("aib_power_w").as_double();
  c.aib_power_frac = v.at("aib_power_frac").as_double();
  c.timing_met = v.at("timing_met").as_bool();
  return c;
}

void interposer_from(const json::Value& v, interposer::InterposerDesign* d) {
  const json::Value& o = v.at("outline");
  if (o.arr.size() != 4) throw std::runtime_error("technology_result JSON: bad outline");
  d->floorplan.outline = {o.arr[0].as_double(), o.arr[1].as_double(), o.arr[2].as_double(),
                          o.arr[3].as_double()};
  const json::Value& s = v.at("route_stats");
  auto& st = d->routes.stats;
  st.total_wl_um = s.at("total_wl_um").as_double();
  st.min_wl_um = s.at("min_wl_um").as_double();
  st.avg_wl_um = s.at("avg_wl_um").as_double();
  st.max_wl_um = s.at("max_wl_um").as_double();
  st.total_vias = static_cast<int>(s.at("total_vias").as_i64());
  st.vertical_via_pairs = static_cast<int>(s.at("vertical_via_pairs").as_i64());
  st.signal_layers_available = static_cast<int>(s.at("signal_layers_available").as_i64());
  st.signal_layers_used = static_cast<int>(s.at("signal_layers_used").as_i64());
  st.overflowed_cells = static_cast<int>(s.at("overflowed_cells").as_i64());
  st.routed_nets = static_cast<int>(s.at("routed_nets").as_i64());
}

LinkStudy link_from(const json::Value& v) {
  LinkStudy l;
  l.spec.length_um = v.at("length_um").as_double();
  l.spec.bit_rate_hz = v.at("bit_rate_hz").as_double();
  const json::Value& r = v.at("result");
  l.result.driver_delay_s = r.at("driver_delay_s").as_double();
  l.result.interconnect_delay_s = r.at("interconnect_delay_s").as_double();
  l.result.total_delay_s = r.at("total_delay_s").as_double();
  l.result.driver_power_w = r.at("driver_power_w").as_double();
  l.result.interconnect_power_w = r.at("interconnect_power_w").as_double();
  l.result.total_power_w = r.at("total_power_w").as_double();
  const json::Value& e = v.at("eye");
  if (e.kind == json::Value::Kind::Object) {
    signal::EyeResult eye;
    eye.width_s = e.at("width_s").as_double();
    eye.height_v = e.at("height_v").as_double();
    eye.ui_s = e.at("ui_s").as_double();
    eye.mean_high_v = e.at("mean_high_v").as_double();
    eye.mean_low_v = e.at("mean_low_v").as_double();
    eye.sigma_high_v = e.at("sigma_high_v").as_double();
    eye.sigma_low_v = e.at("sigma_low_v").as_double();
    l.eye = eye;
  }
  return l;
}

thermal::ThermalReport thermal_from(const json::Value& v) {
  thermal::ThermalReport t;
  for (const auto& [name, die] : v.at("dies").obj) {
    thermal::DieThermal d;
    d.die = name;
    d.hotspot_c = die.at("hotspot_c").as_double();
    d.average_c = die.at("average_c").as_double();
    t.dies.emplace(name, d);
  }
  t.interposer_hotspot_c = v.at("interposer_hotspot_c").as_double();
  t.ambient_c = v.at("ambient_c").as_double();
  t.hotspot_spread = v.at("hotspot_spread").as_double();
  return t;
}

}  // namespace

std::string technology_result_to_json(const TechnologyResult& r) {
  std::string out = "{\"technology_result\":{";
  put_s(out, "tech", tech::short_name(r.technology.kind));

  key(out, "serdes");
  serdes_json(out, r.serdes);

  key(out, "partition");
  out += "{";
  put_i(out, "cut_wires", r.partition.cut_wires);
  put_d(out, "memory_fraction", r.partition.memory_fraction);
  out += "}";

  key(out, "plans");
  out += "{";
  key(out, "logic");
  bump_plan_json(out, r.plans.logic);
  key(out, "memory");
  bump_plan_json(out, r.plans.memory);
  out += "}";

  key(out, "logic");
  pnr_json(out, r.logic);
  key(out, "memory");
  pnr_json(out, r.memory);

  key(out, "interposer");
  interposer_json(out, r.interposer);

  key(out, "l2m");
  link_json(out, r.l2m);
  key(out, "l2l");
  link_json(out, r.l2l);

  key(out, "pdn_model");
  out += "{";
  put_d(out, "l_feed", r.pdn_model.l_feed);
  put_d(out, "r_feed", r.pdn_model.r_feed);
  put_d(out, "c_plane", r.pdn_model.c_plane);
  put_d(out, "r_plane", r.pdn_model.r_plane);
  put_d(out, "l_plane", r.pdn_model.l_plane);
  put_d(out, "l_entry", r.pdn_model.l_entry);
  put_d(out, "r_entry", r.pdn_model.r_entry);
  put_d(out, "r_substrate_loss", r.pdn_model.r_substrate_loss);
  out += "}";

  key(out, "pdn_impedance");
  out += "{";
  key(out, "freq_hz");
  out += "[";
  for (std::size_t i = 0; i < r.pdn_impedance.freq_hz.size(); ++i) {
    if (i > 0) out.push_back(',');
    json::append_double(r.pdn_impedance.freq_hz[i], out);
  }
  out += "]";
  key(out, "z_ohm");
  out += "[";
  for (std::size_t i = 0; i < r.pdn_impedance.z_ohm.size(); ++i) {
    if (i > 0) out.push_back(',');
    json::append_double(r.pdn_impedance.z_ohm[i], out);
  }
  out += "]";
  out += "}";

  key(out, "ir_drop");
  out += "{";
  put_d(out, "max_drop_v", r.ir_drop.max_drop_v);
  put_d(out, "avg_drop_v", r.ir_drop.avg_drop_v);
  out += "}";

  key(out, "settling");
  out += "{";
  put_d(out, "settling_time_s", r.settling.settling_time_s);
  put_d(out, "worst_droop_v", r.settling.worst_droop_v);
  out += "}";

  key(out, "thermal");
  if (r.thermal.has_value()) {
    thermal_json(out, *r.thermal);
  } else {
    out += "null";
  }

  put_d(out, "total_power_w", r.total_power_w);
  put_d(out, "system_fmax_hz", r.system_fmax_hz);
  put_b(out, "link_timing_met", r.link_timing_met);
  out += "}}";
  return out;
}

TechnologyResult technology_result_from_value(const json::Value& top) {
  const json::Value& v = top.at("technology_result");
  TechnologyResult r;
  tech::TechnologyKind kind;
  if (!tech::parse_kind(v.at("tech").str, &kind)) {
    throw std::runtime_error("technology_result JSON: unknown tech \"" + v.at("tech").str +
                             "\"");
  }
  r.technology = tech::make_technology(kind);
  r.serdes = serdes_from(v.at("serdes"));
  r.partition.cut_wires = static_cast<int>(v.at("partition").at("cut_wires").as_i64());
  r.partition.memory_fraction = v.at("partition").at("memory_fraction").as_double();
  r.plans.logic = bump_plan_from(v.at("plans").at("logic"));
  r.plans.memory = bump_plan_from(v.at("plans").at("memory"));
  r.logic = pnr_from(v.at("logic"));
  r.memory = pnr_from(v.at("memory"));
  interposer_from(v.at("interposer"), &r.interposer);
  r.l2m = link_from(v.at("l2m"));
  r.l2l = link_from(v.at("l2l"));
  const json::Value& pm = v.at("pdn_model");
  r.pdn_model.l_feed = pm.at("l_feed").as_double();
  r.pdn_model.r_feed = pm.at("r_feed").as_double();
  r.pdn_model.c_plane = pm.at("c_plane").as_double();
  r.pdn_model.r_plane = pm.at("r_plane").as_double();
  r.pdn_model.l_plane = pm.at("l_plane").as_double();
  r.pdn_model.l_entry = pm.at("l_entry").as_double();
  r.pdn_model.r_entry = pm.at("r_entry").as_double();
  r.pdn_model.r_substrate_loss = pm.at("r_substrate_loss").as_double();
  const json::Value& pi = v.at("pdn_impedance");
  for (const auto& f : pi.at("freq_hz").arr) r.pdn_impedance.freq_hz.push_back(f.as_double());
  for (const auto& z : pi.at("z_ohm").arr) r.pdn_impedance.z_ohm.push_back(z.as_double());
  r.ir_drop.max_drop_v = v.at("ir_drop").at("max_drop_v").as_double();
  r.ir_drop.avg_drop_v = v.at("ir_drop").at("avg_drop_v").as_double();
  r.settling.settling_time_s = v.at("settling").at("settling_time_s").as_double();
  r.settling.worst_droop_v = v.at("settling").at("worst_droop_v").as_double();
  const json::Value& th = v.at("thermal");
  if (th.kind == json::Value::Kind::Object) r.thermal = thermal_from(th);
  r.total_power_w = v.at("total_power_w").as_double();
  r.system_fmax_hz = v.at("system_fmax_hz").as_double();
  r.link_timing_met = v.at("link_timing_met").as_bool();
  return r;
}

TechnologyResult technology_result_from_json(const std::string& text) {
  return technology_result_from_value(json::parse(text));
}

std::string headline_metrics_to_json(const HeadlineMetrics& h) {
  std::string out = "{\"headline_metrics\":{";
  put_d(out, "area_reduction_x", h.area_reduction_x);
  put_d(out, "wirelength_reduction_x", h.wirelength_reduction_x);
  put_d(out, "power_reduction_pct", h.power_reduction_pct);
  put_d(out, "si_improvement_pct", h.si_improvement_pct);
  put_d(out, "pi_improvement_x", h.pi_improvement_x);
  put_d(out, "thermal_increase_pct", h.thermal_increase_pct);
  out += "}}";
  return out;
}

HeadlineMetrics headline_metrics_from_json(const std::string& text) {
  const json::Value top = json::parse(text);
  const json::Value& v = top.at("headline_metrics");
  HeadlineMetrics h;
  h.area_reduction_x = v.at("area_reduction_x").as_double();
  h.wirelength_reduction_x = v.at("wirelength_reduction_x").as_double();
  h.power_reduction_pct = v.at("power_reduction_pct").as_double();
  h.si_improvement_pct = v.at("si_improvement_pct").as_double();
  h.pi_improvement_x = v.at("pi_improvement_x").as_double();
  h.thermal_increase_pct = v.at("thermal_increase_pct").as_double();
  return h;
}

}  // namespace gia::core
