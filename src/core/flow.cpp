#include "core/flow.hpp"

#include "core/instrument.hpp"
#include "core/stagegraph.hpp"
#include "netlist/cell_library.hpp"

namespace gia::core {

TechnologyResult run_full_flow(tech::TechnologyKind kind, const FlowOptions& opts) {
  // The flow itself lives in core/stagegraph.cpp as an explicit stage DAG
  // (per-stage content addresses, artifact cache, stage-parallel waves);
  // this entry point is the DAG execution plus run accounting.
  GIA_SPAN("flow/full_flow");
  instrument::counter_add(instrument::Counter::FlowRuns);
  return stage::execute_flow(kind, opts);
}

namespace {

// Table III routed-wirelength calibration for the 2D monolithic reference:
// one OpenPiton tile implements as a 5.03 m logic partition plus a 1.17 m
// memory partition (the paper's 28 nm chiplet columns). On a single die the
// placer keeps both partitions together, so the bump-escape detours the
// chiplet flows pay (~3% of wirelength routed out to the interposer bump
// grid) are avoided.
constexpr double kLogicTileWirelengthM = 5.03;
constexpr double kMemoryTileWirelengthM = 1.17;
constexpr double kSingleDieDetourFactor = 0.97;

}  // namespace

MonolithicResult run_monolithic_reference(const FlowOptions& opts) {
  MonolithicResult r;
  // Same two tiles, one die: no SerDes, no AIB, no interposer lanes, and
  // the inter-tile NoC buses stay full-width on-die.
  netlist::Netlist net = netlist::build_openpiton(opts.openpiton);
  r.cells = net.total_cells();
  const auto lib = netlist::make_28nm_library();
  const double per_tile_wl_m = kLogicTileWirelengthM * kSingleDieDetourFactor +
                               kMemoryTileWirelengthM * kSingleDieDetourFactor;
  r.wirelength_m = 2.0 * per_tile_wl_m;
  long macro_cells = 0;
  for (const auto& inst : net.instances()) {
    if (inst.is_macro) macro_cells += inst.cell_count;
  }
  const auto p = chiplet::estimate_power(lib, r.cells, macro_cells, r.wirelength_m * 1e6,
                                         opts.pnr.target_freq_hz, 0.113);
  r.total_power_w = p.total_w;
  return r;
}

}  // namespace gia::core
