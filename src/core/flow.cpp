#include "core/flow.hpp"

#include <stdexcept>

#include "core/instrument.hpp"
#include "core/links.hpp"
#include "netlist/cell_library.hpp"
#include "partition/hierarchical.hpp"
#include "tech/library.hpp"

namespace gia::core {

using netlist::ChipletSide;

TechnologyResult run_full_flow(tech::TechnologyKind kind, const FlowOptions& opts) {
  if (kind == tech::TechnologyKind::Monolithic2D) {
    throw std::invalid_argument("use run_monolithic_reference for the 2D reference");
  }
  GIA_SPAN("flow/full_flow");
  instrument::counter_add(instrument::Counter::FlowRuns);
  TechnologyResult r;
  r.technology = tech::make_technology(kind);

  // --- Architecture netlist + SerDes + partitioning (Fig 4, top).
  netlist::Netlist net;
  netlist::ChipletNetlist logic_nl, mem_nl;
  {
    GIA_SPAN("flow/netlist_partition");
    net = netlist::build_openpiton(opts.openpiton);
    r.serdes = netlist::apply_serdes(net, opts.serdes);
    r.partition = opts.partition_mode == PartitionMode::Hierarchical
                      ? partition::hierarchical_partition(net)
                      : partition::fm_partition(net, opts.fm);
    logic_nl = netlist::extract_chiplet(net, r.partition.side, ChipletSide::Logic, 0);
    mem_nl = netlist::extract_chiplet(net, r.partition.side, ChipletSide::Memory, 0);
  }

  // --- Chiplet implementation (Table II / III).
  {
    GIA_SPAN("flow/chiplet_pnr");
    r.plans = chiplet::plan_chiplet_pair(logic_nl.io_signals, mem_nl.io_signals,
                                         logic_nl.cell_area_um2, mem_nl.cell_area_um2,
                                         r.technology);
    r.logic = chiplet::run_chiplet_pnr(net, logic_nl, r.technology, r.plans.logic, opts.pnr);
    r.memory = chiplet::run_chiplet_pnr(net, mem_nl, r.technology, r.plans.memory, opts.pnr);
  }

  // --- Interposer design (Table IV layout half).
  {
    GIA_SPAN("flow/interposer");
    interposer::ChipletInputs inputs;
    inputs.logic_signal_ios = logic_nl.io_signals;
    inputs.memory_signal_ios = mem_nl.io_signals;
    inputs.logic_cell_area_um2 = logic_nl.cell_area_um2;
    inputs.memory_cell_area_um2 = mem_nl.cell_area_um2;
    r.interposer = interposer::build_interposer_design(kind, inputs, opts.router);
  }

  // --- Worst-net links (Table V) and optional eye diagrams (Fig 14).
  {
    GIA_SPAN("flow/links");
    r.l2m.spec = make_link_spec(r.interposer, interposer::TopNetKind::LogicToMemory);
    r.l2l.spec = make_link_spec(r.interposer, interposer::TopNetKind::LogicToLogic);
    r.l2m.result = signal::simulate_link(r.l2m.spec);
    r.l2l.result = signal::simulate_link(r.l2l.spec);
    if (opts.with_eyes) {
      r.l2m.eye = signal::simulate_eye(r.l2m.spec, opts.eye_bits);
      r.l2l.eye = signal::simulate_eye(r.l2l.spec, opts.eye_bits);
    }
  }

  // --- Power integrity (Fig 15 / Table IV).
  {
    GIA_SPAN("flow/pdn");
    r.pdn_model = pdn::build_pdn_model(r.interposer);
    r.pdn_impedance = pdn::impedance_profile(r.pdn_model);
    if (r.technology.has_interposer()) {
      r.ir_drop = pdn::solve_ir_drop(r.interposer);
    }
    r.settling = pdn::simulate_settling(r.pdn_model);
  }

  // --- Thermal (Figs 16-18), optional.
  if (opts.with_thermal) {
    GIA_SPAN("flow/thermal");
    r.thermal = thermal::run_thermal(r.interposer, opts.thermal_mesh);
  }

  // --- Full-chip rollup (Section VII-H).
  const int l2m_lanes = 2 * mem_nl.io_signals;
  const int l2l_lanes = r.serdes.wires_after;
  const double lane_power_l2m =
      r.l2m.result.driver_power_w + opts.rollup_activity_scale * r.l2m.result.interconnect_power_w;
  const double lane_power_l2l =
      r.l2l.result.driver_power_w + opts.rollup_activity_scale * r.l2l.result.interconnect_power_w;
  r.total_power_w = 2.0 * (r.logic.power.total_w + r.memory.power.total_w) +
                    l2m_lanes * lane_power_l2m + l2l_lanes * lane_power_l2l;
  r.system_fmax_hz = std::min(r.logic.fmax_hz, r.memory.fmax_hz);
  const double period = 1.0 / opts.pnr.target_freq_hz;
  r.link_timing_met =
      r.l2m.result.total_delay_s < period && r.l2l.result.total_delay_s < period;
  return r;
}

MonolithicResult run_monolithic_reference(const FlowOptions& opts) {
  MonolithicResult r;
  // Same two tiles, one die: no SerDes, no AIB, no interposer lanes, and
  // the inter-tile NoC buses stay full-width on-die.
  netlist::Netlist net = netlist::build_openpiton(opts.openpiton);
  r.cells = net.total_cells();
  const auto lib = netlist::make_28nm_library();
  // Wirelength: both tiles' logic and memory, placed together; single-die
  // placement avoids the bump-escape detours (a few percent).
  const double per_tile_wl_m = 5.03 * 0.97 + 1.17 * 0.97;
  r.wirelength_m = 2.0 * per_tile_wl_m;
  long macro_cells = 0;
  for (const auto& inst : net.instances()) {
    if (inst.is_macro) macro_cells += inst.cell_count;
  }
  const auto p = chiplet::estimate_power(lib, r.cells, macro_cells, r.wirelength_m * 1e6,
                                         opts.pnr.target_freq_hz, 0.113);
  r.total_power_w = p.total_w;
  return r;
}

}  // namespace gia::core
