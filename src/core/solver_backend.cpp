#include "core/solver_backend.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace gia::core {

namespace {

/// -1 = uninitialised (read GIA_SOLVER on first query), else the enum value.
std::atomic<int> g_backend{-1};

SolverBackend parse_env() {
  const char* env = std::getenv("GIA_SOLVER");
  if (env == nullptr || *env == '\0') return SolverBackend::Auto;
  char buf[8] = {};
  for (int i = 0; i < 7 && env[i] != '\0'; ++i) {
    buf[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(env[i])));
  }
  if (std::strcmp(buf, "dense") == 0) return SolverBackend::Dense;
  if (std::strcmp(buf, "sparse") == 0) return SolverBackend::Sparse;
  return SolverBackend::Auto;
}

}  // namespace

SolverBackend solver_backend() noexcept {
  int v = g_backend.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(parse_env());
    g_backend.store(v, std::memory_order_relaxed);
  }
  return static_cast<SolverBackend>(v);
}

void set_solver_backend(SolverBackend b) noexcept {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

bool use_sparse_mna(int unknowns) noexcept {
  switch (solver_backend()) {
    case SolverBackend::Dense: return false;
    case SolverBackend::Sparse: return true;
    case SolverBackend::Auto: break;
  }
  return unknowns >= kSparseAutoUnknowns;
}

bool use_multigrid(int nx, int ny) noexcept {
  // Cell-centered 2x coarsening needs even extents; odd meshes stay on SOR
  // whatever the backend says.
  if (nx % 2 != 0 || ny % 2 != 0) return false;
  switch (solver_backend()) {
    case SolverBackend::Dense: return false;
    case SolverBackend::Sparse: return true;
    case SolverBackend::Auto: break;
  }
  return nx >= kMultigridAutoExtent && ny >= kMultigridAutoExtent;
}

}  // namespace gia::core
