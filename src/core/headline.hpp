#pragma once

#include "core/flow.hpp"

/// \file headline.hpp
/// The paper's abstract-level claims, computed from full-flow results:
/// area, wirelength, full-chip power, signal integrity, power integrity and
/// thermal deltas of Glass 3D versus the conventional interposers.

namespace gia::core {

struct HeadlineMetrics {
  double area_reduction_x = 0;        ///< interposer area, Glass2.5D / Glass3D (paper: 2.6X)
  double wirelength_reduction_x = 0;  ///< total RDL WL, Silicon2.5D / Glass3D (paper: 21X)
  double power_reduction_pct = 0;     ///< full-chip power vs Glass 2.5D (paper: 17.72%)
  /// Reduction of eye closure (UI - eye width) on the L2M link vs Silicon
  /// 2.5D (the paper quotes a 64.7% signal-integrity increase).
  double si_improvement_pct = 0;
  double pi_improvement_x = 0;        ///< PDN impedance vs organic (paper: 10X)
  double thermal_increase_pct = 0;    ///< peak temp rise vs Silicon 2.5D (paper: ~35%)
};

/// `glass3d` must carry eyes and thermal; the baselines need eyes (si25d)
/// and thermal (si25d) as well.
HeadlineMetrics compute_headlines(const TechnologyResult& glass3d,
                                  const TechnologyResult& glass25d,
                                  const TechnologyResult& si25d,
                                  const TechnologyResult& organic);

}  // namespace gia::core
