#include "core/parallel.hpp"

#include <atomic>

#include "core/instrument.hpp"
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace gia::core {

namespace {

/// True while the current thread is executing inside a parallel region
/// (worker or participating caller); nested parallel calls run inline.
thread_local bool t_in_parallel_region = false;

/// One parallel_for invocation: a shared chunk queue claimed by atomic
/// increment. `active` counts pool workers currently touching the job so
/// the caller knows when the stack-allocated Job may be destroyed.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  /// Submitting thread's open instrumentation span: workers adopt it so
  /// spans opened inside the body nest under the caller's span.
  void* span_ctx = nullptr;
  std::size_t n_chunks = 0;
  std::size_t chunk_size = 0;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<int> active{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr eptr;

  void run_chunks() {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) return;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!eptr) eptr = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  }
};

class Pool {
 public:
  explicit Pool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) threads_.emplace_back([this] { worker(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  int workers() const { return static_cast<int>(threads_.size()); }

  void run(Job& job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = &job;
      ++gen_;
    }
    cv_.notify_all();

    // The caller is a full participant; workers join as they wake.
    t_in_parallel_region = true;
    job.run_chunks();
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return job.active.load() == 0; });
    job_ = nullptr;
  }

 private:
  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        job = job_;
        // Register under the lock only while work remains: once all chunks
        // are claimed the caller may wake and destroy the job, so a late
        // worker must not touch it.
        if (job == nullptr || job->next.load(std::memory_order_relaxed) >= job->n_chunks) {
          continue;
        }
        job->active.fetch_add(1, std::memory_order_relaxed);
      }
      t_in_parallel_region = true;
      {
        instrument::ContextScope span_ctx(job->span_ctx);
        job->run_chunks();
      }
      t_in_parallel_region = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        job->active.fetch_sub(1, std::memory_order_relaxed);
      }
      cv_done_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;
  std::uint64_t gen_ = 0;
  bool stop_ = false;
};

int env_thread_count() {
  if (const char* env = std::getenv("GIA_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(std::min<unsigned>(hw, 256u)) : 1;
}

struct PoolState {
  std::mutex mu;
  int desired = 0;  ///< 0 = not yet initialized from the environment
  std::unique_ptr<Pool> pool;

  int resolve_desired() {
    if (desired == 0) desired = env_thread_count();
    return desired;
  }

  /// Returns the pool to use (workers = desired - 1, the caller being the
  /// remaining executor), or nullptr for serial execution.
  Pool* acquire() {
    std::lock_guard<std::mutex> lk(mu);
    const int want = resolve_desired() - 1;
    if (want <= 0) {
      pool.reset();
      return nullptr;
    }
    if (!pool || pool->workers() != want) pool = std::make_unique<Pool>(want);
    return pool.get();
  }
};

PoolState& state() {
  static PoolState s;
  return s;
}

}  // namespace

int thread_count() {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.resolve_desired();
}

void set_thread_count(int n) {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (n <= 0) {
    s.desired = env_thread_count();
  } else {
    s.desired = std::min(n, 256);
  }
  if (s.desired == 1) s.pool.reset();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  Pool* pool = t_in_parallel_region ? nullptr : state().acquire();
  if (pool == nullptr || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.span_ctx = instrument::current_context();
  job.n = n;
  const std::size_t ways = static_cast<std::size_t>(pool->workers()) + 1;
  job.n_chunks = std::min(n, ways);
  job.chunk_size = (n + job.n_chunks - 1) / job.n_chunks;
  pool->run(job);
  if (job.eptr) std::rethrow_exception(job.eptr);
}

void parallel_for_chunked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n_chunks = (n + grain - 1) / grain;
  parallel_for(n_chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

}  // namespace gia::core
