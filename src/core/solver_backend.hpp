#pragma once

/// \file solver_backend.hpp
/// Process-wide linear-solver backend selection, shared by the circuit MNA
/// engines (dense LU vs sparse CSR + Krylov) and the thermal steady-state
/// solver (fixed-sweep SOR vs geometric multigrid).
///
/// The `GIA_SOLVER` environment variable picks the backend:
///   dense   -- always the small-n reference path (dense LU / SOR)
///   sparse  -- always the sparse/iterative path (CSR Krylov / multigrid)
///   auto    -- switch on problem size (the default; unset, empty, or an
///              unrecognized value all mean auto)
/// Under `auto` the dense path serves every problem below the thresholds
/// here, so default flow runs stay byte-identical to the pre-sparse code.

namespace gia::core {

enum class SolverBackend { Dense, Sparse, Auto };

/// The selected backend. First call reads `GIA_SOLVER`; `set_solver_backend`
/// overrides.
SolverBackend solver_backend() noexcept;

/// Force the backend (tests and embedders; overrides the environment).
void set_solver_backend(SolverBackend b) noexcept;

/// Unknown count at which `auto` hands an MNA system to the sparse Krylov
/// path. Flow circuits are a few hundred unknowns where dense LU wins;
/// production-scale PDN meshes are 10-100x past this.
inline constexpr int kSparseAutoUnknowns = 512;

/// Lateral mesh extent at which `auto` hands the thermal steady solve to
/// multigrid. The default flow mesh is 48x48 and stays on SOR.
inline constexpr int kMultigridAutoExtent = 96;

/// Should an MNA system of `unknowns` unknowns use the sparse path?
bool use_sparse_mna(int unknowns) noexcept;

/// Should an nx-by-ny thermal mesh use multigrid? Requires both extents
/// even (cell-centered 2x coarsening) regardless of backend.
bool use_multigrid(int nx, int ny) noexcept;

}  // namespace gia::core
