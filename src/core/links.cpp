#include "core/links.hpp"

#include "extract/microstrip.hpp"
#include "extract/via_models.hpp"

namespace gia::core {

using interposer::TopNetKind;
using tech::IntegrationStyle;
using tech::TechnologyKind;

signal::LinkSpec make_link_spec(const interposer::InterposerDesign& design, TopNetKind kind) {
  const auto& tech = design.technology;
  signal::LinkSpec spec;
  spec.line = extract::coupled_microstrip_rlgc(extract::min_pitch_geometry(tech), 0.7e9);

  const bool vertical_l2m = tech.integration == IntegrationStyle::EmbeddedDie ||
                            tech.integration == IntegrationStyle::TsvStack;

  if (kind == TopNetKind::LogicToMemory && vertical_l2m) {
    spec.length_um = 0;
    if (tech.integration == IntegrationStyle::EmbeddedDie) {
      // Stacked 22um RDL vias through every build-up level (Fig 1b).
      spec.pre_elements = {extract::stacked_rdl_via_model(
          tech.stacked_rdl_via, tech.rules.metal_layers, tech.rules.dielectric_constant)};
    } else {
      // Face-to-face micro-bump only (Fig 5, adjacent dies).
      spec.pre_elements = {extract::microbump_model(tech.microbump)};
    }
    return spec;
  }

  if (kind == TopNetKind::LogicToLogic && tech.integration == IntegrationStyle::TsvStack) {
    // Back-to-back mini-TSVs with the intermediate micro-bump (Fig 13b).
    spec.length_um = 0;
    spec.pre_elements = {extract::tsv_model(tech.mini_tsv),
                         extract::microbump_model(tech.microbump),
                         extract::tsv_model(tech.mini_tsv)};
    return spec;
  }

  // Lateral RDL link: worst routed net of this kind plus bumps at both ends.
  spec.length_um = design.max_wl_um(kind);
  spec.pre_elements = {extract::microbump_model(tech.microbump)};
  spec.post_elements = {extract::microbump_model(tech.microbump)};
  return spec;
}

signal::LinkSpec make_fixed_line_spec(const tech::Technology& tech, double length_um) {
  signal::LinkSpec spec;
  spec.line = extract::coupled_microstrip_rlgc(extract::min_pitch_geometry(tech), 0.7e9);
  spec.length_um = length_um;
  // A pair of build-up vias (via_size through one dielectric level) as the
  // Table VI transmission-line model prescribes.
  const tech::ViaSpec buildup{.diameter_um = tech.rules.via_size_um,
                              .height_um = tech.rules.dielectric_thickness_um,
                              .pitch_um = tech.rules.microbump_pitch_um,
                              .liner_um = 0.0};
  spec.pre_elements = {extract::stacked_rdl_via_model(buildup, 1, tech.rules.dielectric_constant)};
  spec.post_elements = {
      extract::stacked_rdl_via_model(buildup, 1, tech.rules.dielectric_constant)};
  return spec;
}

}  // namespace gia::core
