#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

/// \file canon.hpp
/// Canonical key=value rendering and FNV-1a hashing shared by every
/// content-address in the system: the serving layer's request keys
/// (serve/request.cpp) and the stage graph's per-stage artifact keys
/// (core/stagegraph.cpp). Both hash the output of a `Writer`, so the two
/// key spaces can never drift apart in formatting: one spelling of a knob
/// ("section.key=value\n", doubles in %.17g) is the preimage everywhere.

namespace gia::core::canon {

/// 64-bit FNV-1a over an arbitrary byte string.
inline std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Fixed-width lowercase-hex spelling of a key (cache filenames, logs,
/// stage-key chaining).
inline std::string key_hex(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

/// "section.subsection.key=value" line writer. `begin`/`end` push and pop
/// dotted section prefixes; `field` renders ints/bools/doubles with the
/// canonical spellings (%.17g for doubles, 1/0 for bools). The `token`
/// member mirrors the serve-layer walk() visitor signature so the same
/// field enumeration can drive this writer and the JSON reader/writer.
struct Writer {
  std::string out;
  std::string prefix;

  void begin(const char* name) { prefix += std::string(name) + "."; }
  /// Optional section: entered (and rendered) only when `nondefault`, so a
  /// block whose every field is at its default hashes identically to a
  /// schema that predates the block. Callers skip the matching `end()` when
  /// this returns false.
  bool begin_optional(const char* name, bool nondefault) {
    if (nondefault) begin(name);
    return nondefault;
  }
  void end() { prefix.erase(prefix.rfind('.', prefix.size() - 2) + 1); }
  void line(const char* name, const std::string& value) {
    out += prefix;
    out += name;
    out.push_back('=');
    out += value;
    out.push_back('\n');
  }
  void token(const char* name, const std::string& cur,
             const std::function<void(const std::string&)>&) {
    line(name, cur);
  }
  /// Optional knob: rendered only when `nondefault`, so documents and stage
  /// keys predating the knob keep their hashes. The reader-side visitors
  /// always probe for it (absent means keep-default).
  void token_opt(const char* name, const std::string& cur, bool nondefault,
                 const std::function<void(const std::string&)>&) {
    if (nondefault) line(name, cur);
  }
  template <typename T>
  void field_opt(const char* name, const T& x, bool nondefault) {
    if (nondefault) field(name, x);
  }
  void field(const char* name, const int& x) { line(name, std::to_string(x)); }
  void field(const char* name, const unsigned& x) { line(name, std::to_string(x)); }
  void field(const char* name, const bool& x) { line(name, x ? "1" : "0"); }
  void field(const char* name, const double& x) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    line(name, buf);
  }
};

}  // namespace gia::core::canon
