#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <vector>

#include "core/flow.hpp"
#include "partition/kway.hpp"

/// \file stagegraph.hpp
/// The co-design flow of Fig 4 as an explicit stage DAG. Each stage
/// declares its upstream artifacts and the subset of `FlowOptions` knobs it
/// reads, and produces one artifact struct; `run_full_flow` is a thin DAG
/// execution over this registry (byte-identical `TechnologyResult` to the
/// former monolithic function).
///
/// Stage keys are content addresses: FNV-1a over a canonical preimage of
/// (stage name, technology when the stage reads it, upstream stage keys,
/// the stage's declared knob subset) rendered with `core/canon.hpp` -- the
/// same machinery behind the serving layer's request keys. Changing a knob
/// therefore invalidates exactly the stages that declare it plus their
/// transitive dependents; a downstream-only change (eye_bits, thermal mesh,
/// rollup activity) reuses every upstream artifact.
///
/// A process-wide sharded LRU artifact cache backs the executor, so
/// sweeps, ablation benches and `giad` requests that differ only in
/// downstream knobs skip the expensive PnR/interposer stages. Concurrent
/// evaluations of the same stage key coalesce onto one computation (the
/// second caller blocks on the first's result). The cache is bounded
/// (entry count, LRU per shard) and controlled by `GIA_STAGE_CACHE`:
/// unset = enabled with the default capacity, "0"/"off" = disabled, a
/// positive integer = enabled with that capacity.
///
/// Stages whose dependencies are satisfied in the same wave run
/// concurrently through `core/parallel` (`chiplet_pnr` ∥ `interposer`,
/// then `links` ∥ `pdn` ∥ `thermal`), preserving the repo-wide determinism
/// contract: output is byte-identical at any thread count and with the
/// cache on or off.

namespace gia::core::stage {

/// The flow stages, in topological (registry) order.
enum class StageId : int {
  NetlistPartition = 0,  ///< netlist gen + SerDes + partitioning (Fig 4, top)
  ChipletPnr,            ///< chiplet planning + PnR (Tables II/III)
  Interposer,            ///< interposer floorplan + routing (Table IV)
  Links,                 ///< worst-net link specs + delay/power (Table V)
  Eyes,                  ///< optional eye diagrams (Fig 14)
  Pdn,                   ///< PDN model, impedance, IR drop, settling (Fig 15)
  Thermal,               ///< optional thermal solve (Figs 16-18)
  Rollup,                ///< full-chip power/fmax/timing rollup (Sec VII-H)
};
inline constexpr int kStageCount = 8;

inline constexpr int idx(StageId id) { return static_cast<int>(id); }

/// One registry row: identity, instrumentation span name, and the stage's
/// declared inputs (whether it reads the technology kind, and its upstream
/// stages; the knob subset lives in `stage_knob_text`).
struct StageInfo {
  StageId id;
  const char* name;       ///< stable snake_case token ("netlist_partition")
  const char* span_name;  ///< instrumentation span ("flow/netlist_partition")
  bool reads_tech;        ///< true when the stage body reads the technology
  int dep_count;
  std::array<StageId, 3> deps;  ///< first `dep_count` entries are upstream stages
};

/// The full registry, in topological order.
const std::array<StageInfo, kStageCount>& registry();
const StageInfo& info(StageId id);
const char* stage_name(StageId id);
/// Parse a stage token; returns false on unknown names.
bool parse_stage(const std::string& name, StageId* out);

/// Canonical rendering of the knob subset a stage declares (the
/// `FlowOptions`-derived lines of its key preimage). Knob names match the
/// serve-layer request canonicalization ("openpiton.seed=7", ...).
std::string stage_knob_text(StageId id, const FlowOptions& opts);

/// Content addresses for every stage of one (technology, options) request.
struct StageKeys {
  std::array<std::uint64_t, kStageCount> key{};
  std::uint64_t of(StageId id) const { return key[idx(id)]; }
};
StageKeys compute_stage_keys(tech::TechnologyKind kind, const FlowOptions& opts);

// --- Stage artifacts. Plain value structs: copyable, and every field a
// downstream stage or the final TechnologyResult consumes is captured.

struct NetlistPartitionArtifact {
  netlist::Netlist net;  ///< post-SerDes netlist (consumed by chiplet PnR)
  netlist::SerDesReport serdes;
  partition::PartitionResult partition;
  netlist::ChipletNetlist logic_nl, mem_nl;
  // Generalized N-chiplet mode (system.arrangement != legacy) only; empty
  // in legacy runs. `partition` then summarizes the K-way cut (side = die
  // class per instance).
  partition::KwayResult kway;
  std::vector<netlist::ChipletNetlist> parts;  ///< per-chiplet views
  std::vector<partition::PairCut> pairs;       ///< inter-chiplet wire demand
};

struct ChipletPnrArtifact {
  chiplet::ChipletPair plans;               // Table II
  chiplet::ChipletPnrResult logic, memory;  // Table III
  /// Generalized mode: per-chiplet PnR results (`logic`/`memory` then hold
  /// the first logic-/memory-class representatives). Empty in legacy runs.
  std::vector<chiplet::ChipletPnrResult> sys_pnr;
};

struct InterposerArtifact {
  interposer::InterposerDesign design;  // Table IV (layout half)
};

struct LinksArtifact {
  LinkStudy l2m, l2l;  ///< spec + delay/power result; eye fields empty here
};

struct EyesArtifact {
  std::optional<signal::EyeResult> l2m, l2l;  ///< empty when !with_eyes
};

struct PdnArtifact {
  pdn::PdnModel model;
  pdn::ImpedanceProfile impedance;
  pdn::IrDropResult ir_drop;  ///< default when the technology has no interposer
  pdn::SettlingResult settling;
};

struct ThermalArtifact {
  std::optional<thermal::ThermalReport> report;  ///< empty when !with_thermal
};

struct RollupArtifact {
  double total_power_w = 0;
  double system_fmax_hz = 0;
  bool link_timing_met = false;
};

/// What happened to each stage during one `execute_flow` call.
struct StageRunRecord {
  enum class Outcome : unsigned char {
    Computed = 0,  ///< cache miss (or cache disabled): stage body ran
    CacheHit,      ///< artifact served from the stage cache
    Coalesced      ///< attached to a concurrent computation of the same key
  };
  std::array<Outcome, kStageCount> outcome{};

  /// Stages served without running their body (CacheHit + Coalesced).
  std::uint64_t hits() const;
  /// Stages whose body ran (Computed).
  std::uint64_t misses() const;
};

/// Run the flow DAG for one technology. Byte-identical to the pre-stage
/// monolithic `run_full_flow` at any thread count and any cache state.
/// Fills `record` (when non-null) with the per-stage cache outcomes.
/// Throws std::invalid_argument for Monolithic2D (use
/// `run_monolithic_reference`).
TechnologyResult execute_flow(tech::TechnologyKind kind, const FlowOptions& opts,
                              StageRunRecord* record = nullptr);

// --- Process-wide stage-artifact cache controls and statistics.

struct StageCacheStats {
  struct PerStage {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t coalesced = 0;
  };
  std::array<PerStage, kStageCount> stage{};
  std::size_t entries = 0;   ///< current artifacts held across shards
  std::size_t capacity = 0;  ///< configured entry bound
  bool enabled = false;

  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  std::uint64_t total_evictions() const;
  std::uint64_t total_coalesced() const;
};

StageCacheStats stage_cache_stats();
/// Passive residency probe: true when the artifact for `key` is currently
/// stored or being computed. Never touches LRU recency or hit/miss
/// counters -- used by the dse:: cache-aware batch ordering, which must
/// observe the cache without perturbing it. Always false when disabled.
bool stage_cache_resident(std::uint64_t key);
/// Canonical single-line JSON of `stage_cache_stats()` (embedded in the
/// daemon `stats` verb and bench JSON lines).
std::string stage_cache_stats_json();

/// Drop every cached artifact and zero the counters.
void stage_cache_clear();

bool stage_cache_enabled();
/// Override the GIA_STAGE_CACHE environment decision (tests, benches).
void set_stage_cache_enabled(bool on);
std::size_t stage_cache_capacity();
/// Rebound the cache (entries, split across shards); takes effect on the
/// next insertion. A smaller bound evicts lazily, not eagerly.
void set_stage_cache_capacity(std::size_t entries);

}  // namespace gia::core::stage
