#include "core/instrument.hpp"

#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/json.hpp"
#include "core/parallel.hpp"

namespace gia::core::instrument {

namespace {

constexpr int kNumCounters = static_cast<int>(Counter::kCount);

constexpr const char* kCounterNames[kNumCounters] = {
    "sor_iterations",        "thermal_transient_steps",
    "lu_factorizations",     "lu_solves",
    "transient_steps",       "transient_step_rejections",
    "ac_points",             "mc_trials",
    "prbs_segments",         "eye_uis",
    "sweep_points",          "flow_runs",
    "serve_requests",        "cache_hits",
    "cache_misses",          "cache_coalesced",
    "stage_runs",            "stage_cache_hits",
    "stage_cache_misses",    "krylov_iterations",
    "mg_vcycles",            "dse_points_evaluated",
    "dse_front_updates",     "dse_cache_assisted_points",
    "fleet_forwards",        "fleet_hedges",
    "fleet_shed",            "fleet_worker_failures",
};

struct SpanNode {
  std::string name;
  SpanNode* parent = nullptr;
  std::vector<std::unique_ptr<SpanNode>> children;  // guarded by Registry::mu
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns{0};
};

struct Registry {
  std::mutex mu;  ///< guards span-tree structure and gauges; stats are atomic
  SpanNode root;
  std::vector<std::pair<std::string, double>> gauges;
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  Registry() { root.name = "root"; }
};

Registry& reg() {
  static Registry r;
  return r;
}

thread_local SpanNode* t_current = nullptr;

/// -1 = uninitialised (read GIA_TRACE on first query), else 0/1.
std::atomic<int> g_enabled{-1};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("GIA_TRACE");
    const int on = (env != nullptr && env[0] != '\0' &&
                    !(env[0] == '0' && env[1] == '\0'))
                       ? 1
                       : 0;
    // First writer wins so concurrent initial queries agree.
    g_enabled.compare_exchange_strong(s, on);
    s = g_enabled.load(std::memory_order_relaxed);
  }
  return s != 0;
}

void set_enabled(bool on) noexcept { g_enabled.store(on ? 1 : 0); }

void reset() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  r.root.children.clear();
  r.root.count.store(0);
  r.root.total_ns.store(0);
  r.root.min_ns.store(~std::uint64_t{0});
  r.root.max_ns.store(0);
  r.gauges.clear();
  for (auto& c : r.counters) c.store(0);
  t_current = nullptr;
}

const char* counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<int>(c)];
}

void counter_add(Counter c, std::uint64_t n) noexcept {
  if (!enabled()) return;
  reg().counters[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t counter_value(Counter c) noexcept {
  return reg().counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
}

void gauge_set(const std::string& name, double value) {
  if (!enabled()) return;
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& g : r.gauges) {
    if (g.first == name) {
      g.second = value;
      return;
    }
  }
  r.gauges.emplace_back(name, value);
}

ScopedSpan::ScopedSpan(const char* name) noexcept {
  if (!enabled()) return;
  auto& r = reg();
  SpanNode* parent = t_current != nullptr ? t_current : &r.root;
  SpanNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& c : parent->children) {
      if (c->name == name) {
        node = c.get();
        break;
      }
    }
    if (node == nullptr) {
      auto owned = std::make_unique<SpanNode>();
      owned->name = name;
      owned->parent = parent;
      node = owned.get();
      parent->children.push_back(std::move(owned));
    }
  }
  prev_ = t_current;
  t_current = node;
  node_ = node;
  t0_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  const std::uint64_t dt = now_ns() - t0_ns_;
  auto* n = static_cast<SpanNode*>(node_);
  n->count.fetch_add(1, std::memory_order_relaxed);
  n->total_ns.fetch_add(dt, std::memory_order_relaxed);
  atomic_min(n->min_ns, dt);
  atomic_max(n->max_ns, dt);
  t_current = static_cast<SpanNode*>(prev_);
}

void* current_context() noexcept {
  return enabled() ? static_cast<void*>(t_current) : nullptr;
}

ContextScope::ContextScope(void* ctx) noexcept : prev_(t_current) {
  if (ctx != nullptr) t_current = static_cast<SpanNode*>(ctx);
}

ContextScope::~ContextScope() { t_current = static_cast<SpanNode*>(prev_); }

// --- Report capture -------------------------------------------------------

namespace {

SpanSnapshot snapshot_node(const SpanNode& n) {
  SpanSnapshot s;
  s.name = n.name;
  s.count = n.count.load(std::memory_order_relaxed);
  s.total_ns = n.total_ns.load(std::memory_order_relaxed);
  const std::uint64_t mn = n.min_ns.load(std::memory_order_relaxed);
  s.min_ns = s.count > 0 ? mn : 0;
  s.max_ns = n.max_ns.load(std::memory_order_relaxed);
  s.children.reserve(n.children.size());
  for (const auto& c : n.children) s.children.push_back(snapshot_node(*c));
  return s;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type_string() {
#ifdef GIA_BUILD_TYPE
  return GIA_BUILD_TYPE;
#elif defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

RunReport RunReport::capture() {
  RunReport out;
  out.compiler = compiler_string();
  out.build_type = build_type_string();
  out.threads = thread_count();
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  out.counters.reserve(kNumCounters);
  for (int i = 0; i < kNumCounters; ++i) {
    out.counters.emplace_back(kCounterNames[i],
                              r.counters[static_cast<std::size_t>(i)].load());
  }
  out.gauges = r.gauges;
  out.root = snapshot_node(r.root);
  return out;
}

// --- JSON serialisation ---------------------------------------------------

namespace {

using json::append_double;
using json::append_u64;
using json::escape;

void json_escape(const std::string& s, std::string& out) { escape(s, out); }

void span_json(const SpanSnapshot& s, std::string& out) {
  out += "{\"name\":";
  json_escape(s.name, out);
  out += ",\"count\":";
  append_u64(s.count, out);
  out += ",\"total_ns\":";
  append_u64(s.total_ns, out);
  out += ",\"min_ns\":";
  append_u64(s.min_ns, out);
  out += ",\"max_ns\":";
  append_u64(s.max_ns, out);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i > 0) out.push_back(',');
    span_json(s.children[i], out);
  }
  out += "]}";
}

}  // namespace

std::string span_tree_json(const SpanSnapshot& s) {
  std::string out;
  span_json(s, out);
  return out;
}

std::string RunReport::to_json() const {
  std::string out = "{\"run_report\":{\"compiler\":";
  json_escape(compiler, out);
  out += ",\"build_type\":";
  json_escape(build_type, out);
  out += ",\"threads\":";
  append_u64(static_cast<std::uint64_t>(threads), out);
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    json_escape(counters[i].first, out);
    out.push_back(':');
    append_u64(counters[i].second, out);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    json_escape(gauges[i].first, out);
    out.push_back(':');
    append_double(gauges[i].second, out);
  }
  out += "},\"spans\":";
  span_json(root, out);
  out += "}}";
  return out;
}

// --- Text tree ------------------------------------------------------------

namespace {

std::string fmt_duration(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) * 1e-9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns) * 1e-3);
  }
  return buf;
}

void span_text(const SpanSnapshot& s, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += s.name;
  if (s.count > 0) {
    out += "  count=" + std::to_string(s.count) + " total=" + fmt_duration(s.total_ns) +
           " min=" + fmt_duration(s.min_ns) + " max=" + fmt_duration(s.max_ns);
  }
  out.push_back('\n');
  for (const auto& c : s.children) span_text(c, depth + 1, out);
}

}  // namespace

std::string RunReport::to_text() const {
  std::string out = "run report (" + compiler + ", " + build_type +
                    ", threads=" + std::to_string(threads) + ")\nspans:\n";
  span_text(root, 1, out);
  out += "counters:\n";
  for (const auto& [name, v] : counters) {
    out += "  " + name + " = " + std::to_string(v) + "\n";
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : gauges) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out += "  " + name + " = " + buf + "\n";
    }
  }
  return out;
}

// --- JSON parsing (round-trips exactly what to_json emits) ----------------

namespace {

SpanSnapshot span_from_json(const json::Value& v) {
  SpanSnapshot s;
  s.name = v.at("name").str;
  s.count = v.at("count").as_u64();
  s.total_ns = v.at("total_ns").as_u64();
  s.min_ns = v.at("min_ns").as_u64();
  s.max_ns = v.at("max_ns").as_u64();
  for (const auto& c : v.at("children").arr) s.children.push_back(span_from_json(c));
  return s;
}

}  // namespace

RunReport RunReport::from_json(const std::string& text) {
  const json::Value top = json::parse(text);
  const json::Value& rr = top.at("run_report");
  RunReport out;
  out.compiler = rr.at("compiler").str;
  out.build_type = rr.at("build_type").str;
  out.threads = static_cast<int>(rr.at("threads").as_u64());
  for (const auto& [k, v] : rr.at("counters").obj) out.counters.emplace_back(k, v.as_u64());
  for (const auto& [k, v] : rr.at("gauges").obj) out.gauges.emplace_back(k, v.as_double());
  out.root = span_from_json(rr.at("spans"));
  return out;
}

// --- Emission -------------------------------------------------------------

void emit_report() {
  if (!enabled()) return;
  const RunReport rep = RunReport::capture();
  const char* mode = std::getenv("GIA_TRACE");
  const bool text = mode != nullptr && std::strcmp(mode, "text") == 0;
  const std::string body = text ? rep.to_text() : rep.to_json() + "\n";
  if (const char* path = std::getenv("GIA_TRACE_FILE")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      return;
    }
    std::fprintf(stderr, "GIA_TRACE_FILE: cannot open %s, writing to stdout\n", path);
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
}

}  // namespace gia::core::instrument
