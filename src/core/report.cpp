#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gia::core {

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::eng(double v, const char* unit, int precision) {
  static const struct { double scale; const char* prefix; } bands[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  if (v == 0.0) return "0 " + std::string(unit);
  const double mag = std::abs(v);
  for (const auto& b : bands) {
    if (mag >= b.scale * 0.9995) {
      return num(v / b.scale, precision) + " " + b.prefix + unit;
    }
  }
  return num(v / 1e-15, precision) + " f" + std::string(unit);
}

std::string Table::pct(double v, int precision) { return num(v, precision) + "%"; }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << "  ";
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    os << "\n";
    if (i == 0) {
      os << "  ";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << std::string(widths[c], '-') << "  ";
      }
      os << "\n";
    }
  }
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace gia::core
