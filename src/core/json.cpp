#include "core/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gia::core::json {

const Value& Value::at(const std::string& key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return v;
  }
  throw std::runtime_error("JSON: missing key \"" + key + "\"");
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t Value::as_u64() const { return std::strtoull(raw.c_str(), nullptr, 10); }
std::int64_t Value::as_i64() const { return std::strtoll(raw.c_str(), nullptr, 10); }
double Value::as_double() const { return std::strtod(raw.c_str(), nullptr); }

namespace {

class Parser {
 public:
  Parser(const std::string& s, const ParseLimits& limits) : s_(s), limits_(limits) {}

  Value parse() {
    if (limits_.max_bytes != 0 && s_.size() > limits_.max_bytes) fail("document too large");
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("JSON: ") + what + " at offset " +
                             std::to_string(pos_));
  }
  void enter() {
    if (++depth_ > limits_.max_depth) fail("nesting too deep");
  }
  void leave() { --depth_; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  Value value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::String;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
      pos_ += 4;
      return Value{};
    }
    return number();
  }

  Value object() {
    expect('{');
    enter();
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      leave();
      return v;
    }
    for (;;) {
      std::string key = string();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        leave();
        return v;
      }
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value array() {
    expect('[');
    enter();
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      leave();
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        leave();
        return v;
      }
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16)));
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  bool digit_at(std::size_t p) const {
    return p < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p]));
  }

  /// Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// Malformed literals (`1e`, `-`, `.5`, `01`) fail at the offending byte.
  Value number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("expected digit in number");
    if (s_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("leading zero in number");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("expected digit after '.'");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digit_at(pos_)) fail("expected digit in exponent");
      while (digit_at(pos_)) ++pos_;
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.raw = s_.substr(start, pos_ - start);
    return v;
  }

  const std::string& s_;
  const ParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text, ParseLimits()).parse(); }

Value parse(const std::string& text, const ParseLimits& limits) {
  return Parser(text, limits).parse();
}

void escape(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::uint64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::int64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_double(double v, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_bool(bool v, std::string& out) { out += v ? "true" : "false"; }

}  // namespace gia::core::json
