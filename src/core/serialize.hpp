#pragma once

#include <string>

#include "core/flow.hpp"
#include "core/headline.hpp"
#include "core/json.hpp"

/// \file serialize.hpp
/// JSON round-trip serialization for flow results -- the payload format of
/// the serving layer (src/serve): daemon responses, the on-disk result
/// cache under GIA_CACHE_DIR, and offline archiving of design points.
///
/// The serialization is *summary-level*: every scalar a table, report or
/// serving client consumes is captured (SerDes/partition/PnR/interposer
/// metrics, link delays and eyes, PDN model + impedance profile, IR
/// drop/settling, thermal hotspots, full-chip rollup), while bulk internal
/// artifacts are deliberately omitted (bump site lists, routed geometry,
/// waveforms, thermal fields, eye rasters, partition assignments). The
/// technology itself is stored as its kind token and rebuilt through
/// `tech::make_technology`, so design rules are never duplicated.
///
/// Round-trip contract: `technology_result_to_json` emits canonical
/// single-line JSON (fixed key order, %.17g doubles);
/// `technology_result_from_json(technology_result_to_json(r))` restores
/// every serialized field exactly, and re-serializing the parsed result
/// reproduces the original string byte-for-byte.

namespace gia::core {

std::string technology_result_to_json(const TechnologyResult& r);
/// Parse a result produced by `technology_result_to_json`. Throws
/// std::runtime_error on malformed input. Fields outside the serialized
/// summary are left default-initialized.
TechnologyResult technology_result_from_json(const std::string& text);
/// Same, from an already-parsed `{"technology_result":{...}}` document.
TechnologyResult technology_result_from_value(const json::Value& top);

std::string headline_metrics_to_json(const HeadlineMetrics& h);
HeadlineMetrics headline_metrics_from_json(const std::string& text);

}  // namespace gia::core
