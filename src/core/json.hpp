#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal dependency-free JSON reader/writer shared by the run-report
/// layer (core/instrument), the result serialization layer (core/serialize)
/// and the serving protocol (serve/). The writer helpers emit canonical
/// single-line JSON: numbers via %.17g (doubles round-trip exactly through
/// strtod, so serialize -> parse -> re-serialize is byte-identical), object
/// keys in emission order, no whitespace. The parser keeps number tokens
/// verbatim so a parsed document can be interrogated as integer or double
/// without precision loss.

namespace gia::core::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool b = false;
  std::string raw;  ///< number token, verbatim
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  /// Object member access; throws std::runtime_error when missing.
  const Value& at(const std::string& key) const;
  /// Object member lookup; nullptr when missing (optional fields).
  const Value* find(const std::string& key) const;

  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  bool as_bool() const { return b; }
};

/// Parse a complete JSON document. Throws std::runtime_error (with byte
/// offset) on malformed input or trailing characters.
Value parse(const std::string& text);

/// Append `"s"` with standard JSON escaping.
void escape(const std::string& s, std::string& out);

void append_u64(std::uint64_t v, std::string& out);
void append_i64(std::int64_t v, std::string& out);
/// Shortest-exact double formatting (%.17g): strtod(output) == v.
void append_double(double v, std::string& out);
void append_bool(bool v, std::string& out);

}  // namespace gia::core::json
