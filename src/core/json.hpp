#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal dependency-free JSON reader/writer shared by the run-report
/// layer (core/instrument), the result serialization layer (core/serialize)
/// and the serving protocol (serve/). The writer helpers emit canonical
/// single-line JSON: numbers via %.17g (doubles round-trip exactly through
/// strtod, so serialize -> parse -> re-serialize is byte-identical), object
/// keys in emission order, no whitespace. The parser keeps number tokens
/// verbatim so a parsed document can be interrogated as integer or double
/// without precision loss.

namespace gia::core::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool b = false;
  std::string raw;  ///< number token, verbatim
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  /// Object member access; throws std::runtime_error when missing.
  const Value& at(const std::string& key) const;
  /// Object member lookup; nullptr when missing (optional fields).
  const Value* find(const std::string& key) const;

  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  bool as_bool() const { return b; }
};

/// Bounds applied while parsing untrusted input. The defaults accept every
/// document this library emits; the serving layer tightens them per request.
struct ParseLimits {
  /// Maximum container nesting. Recursion is one frame per level, so this
  /// also bounds parser stack use (a `[[[[...` bomb fails at this depth
  /// with a parse error instead of overflowing the stack).
  std::size_t max_depth = 128;
  /// Maximum document size in bytes (0 = unlimited).
  std::size_t max_bytes = 64u << 20;
};

/// Parse a complete JSON document. Throws std::runtime_error (with byte
/// offset) on malformed input, trailing characters, or a violated limit.
/// Number tokens must match the strict JSON grammar: `1e`, `-`, `.5` and
/// `01` are rejected with the offset of the offending byte.
Value parse(const std::string& text);
Value parse(const std::string& text, const ParseLimits& limits);

/// Append `"s"` with standard JSON escaping.
void escape(const std::string& s, std::string& out);

void append_u64(std::uint64_t v, std::string& out);
void append_i64(std::int64_t v, std::string& out);
/// Shortest-exact double formatting (%.17g): strtod(output) == v.
void append_double(double v, std::string& out);
void append_bool(bool v, std::string& out);

}  // namespace gia::core::json
