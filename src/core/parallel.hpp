#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

/// \file parallel.hpp
/// Dependency-free parallel execution layer: a lazily-started std::thread
/// pool exposed through `parallel_for` (static chunking over an index
/// range), `parallel_for_chunked` (caller-visible fixed chunk grid), and
/// `ordered_reduce` (per-chunk partials combined in chunk order).
///
/// Determinism contract: every helper produces byte-identical results at
/// any thread count. `parallel_for` bodies must write disjoint state per
/// index; `ordered_reduce` fixes its chunk grid from `grain` alone (never
/// from the thread count) and folds partials serially in ascending chunk
/// order, so floating-point reductions do not depend on scheduling.
///
/// The worker count comes from `set_thread_count()` or, by default, the
/// `GIA_THREADS` environment variable (falling back to the hardware
/// concurrency). A count of 1 runs every helper inline on the calling
/// thread -- the exact serial code path, no pool started. Nested calls
/// from inside a parallel region also degrade to inline execution.

namespace gia::core {

/// Current worker-thread target (>= 1). Reads `GIA_THREADS` on first use.
int thread_count();

/// Fix the worker count. `n >= 1` pins it (1 = pure serial execution and
/// the pool is torn down); `n == 0` re-reads `GIA_THREADS` / hardware
/// default. Safe to call between parallel regions; the pool is resized
/// lazily on the next parallel call.
void set_thread_count(int n);

/// Invoke `fn(i)` for every i in [0, n). Indices are distributed over the
/// pool in contiguous statically-sized chunks; exceptions thrown by `fn`
/// are rethrown on the calling thread (first one wins, remaining chunks
/// are abandoned). `fn` must be safe to call concurrently and must only
/// write state owned by its index.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Invoke `fn(begin, end)` over the fixed chunk grid of [0, n) with chunks
/// of `grain` indices (last chunk may be short). The grid depends only on
/// `grain`, never on the thread count, so per-chunk accumulation is
/// reproducible.
void parallel_for_chunked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic ordered reduction: partition [0, n) into fixed chunks of
/// `grain`, evaluate `chunk(begin, end) -> T` concurrently, then fold the
/// partials serially in ascending chunk order via `combine(acc, partial)`.
/// Byte-identical at any thread count because both the chunk grid and the
/// combine order are scheduling-independent.
template <typename T, typename ChunkFn, typename CombineFn>
T ordered_reduce(std::size_t n, std::size_t grain, T init, ChunkFn chunk, CombineFn combine) {
  if (n == 0) return init;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n_chunks = (n + grain - 1) / grain;
  std::vector<T> partials(n_chunks);
  parallel_for(n_chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    partials[c] = chunk(begin, std::min(n, begin + grain));
  });
  T acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace gia::core
