#pragma once

#include <optional>

#include "chiplet/pnr_flow.hpp"
#include "chiplet/system.hpp"
#include "interposer/design.hpp"
#include "netlist/openpiton.hpp"
#include "netlist/serdes.hpp"
#include "partition/fm.hpp"
#include "partition/partition.hpp"
#include "pdn/impedance.hpp"
#include "pdn/ir_drop.hpp"
#include "pdn/settling.hpp"
#include "signal/eye.hpp"
#include "signal/link_sim.hpp"
#include "thermal/analysis.hpp"

/// \file flow.hpp
/// The full chiplet/interposer co-design flow of Fig 4, as one call:
/// netlist generation -> SerDes insertion -> hierarchical partitioning ->
/// chiplet PnR -> interposer design -> SI / PI / thermal analysis ->
/// full-chip rollup. One TechnologyResult is one column of the paper's
/// comparison tables.
///
/// Internally the flow is an explicit stage DAG (core/stagegraph.hpp) with
/// per-stage content-addressed artifacts: repeated evaluations that differ
/// only in downstream knobs (eye_bits, thermal mesh, rollup activity) reuse
/// the cached upstream PnR/interposer artifacts, and independent stages run
/// concurrently through core/parallel. The result is byte-identical to a
/// serial, uncached evaluation.

namespace gia::core {

/// Which chipletization branch of Fig 4 to run.
enum class PartitionMode {
  Hierarchical,  ///< the paper's choice: L3 + interface logic = memory chiplet
  Flattened      ///< Fiduccia-Mattheyses min-cut on the flattened netlist
};

struct FlowOptions {
  /// N-chiplet system description. The default (Arrangement::Legacy) runs
  /// the paper's fixed two-tile study byte-identically to the pre-system
  /// schema; grid/hex/placed arrangements run the generalized K-chiplet
  /// path (interposer technologies only).
  chiplet::SystemConfig system;
  netlist::OpenPitonConfig openpiton;
  netlist::SerDesConfig serdes;
  PartitionMode partition_mode = PartitionMode::Hierarchical;
  partition::FmConfig fm;  ///< used when partition_mode == Flattened
  chiplet::PnrOptions pnr;
  interposer::RouterOptions router;
  thermal::MeshOptions thermal_mesh;
  /// Run the expensive analyses (eye diagrams, thermal solve). Tables II-IV
  /// do not need them; benches for Fig 14/17 do.
  bool with_eyes = false;
  bool with_thermal = false;
  int eye_bits = 96;
  /// Interconnect activity convention for the full-chip power rollup: the
  /// paper books lanes at their worst-case (toggle-every-bit) channel power
  /// (Table V feeding Table IV), i.e. 0.5 * f * C * V^2 -- 2x our random
  /// data convention.
  double rollup_activity_scale = 2.0;
};

struct LinkStudy {
  signal::LinkSpec spec;
  signal::LinkResult result;
  std::optional<signal::EyeResult> eye;
};

struct TechnologyResult {
  tech::Technology technology;
  netlist::SerDesReport serdes;
  partition::PartitionResult partition;
  chiplet::ChipletPair plans;                 // Table II
  chiplet::ChipletPnrResult logic, memory;    // Table III
  interposer::InterposerDesign interposer;    // Table IV (layout half)
  LinkStudy l2m, l2l;                         // Table V
  pdn::PdnModel pdn_model;
  pdn::ImpedanceProfile pdn_impedance;        // Fig 15
  pdn::IrDropResult ir_drop;                  // Table IV
  pdn::SettlingResult settling;               // Table IV
  std::optional<thermal::ThermalReport> thermal;  // Figs 16-18

  /// Full-chip power (Table IV row): four chiplets + all interposer lanes
  /// at the rollup activity.
  double total_power_w = 0;
  /// System clock = slowest chiplet (Section VII-H).
  double system_fmax_hz = 0;
  /// Do the off-chip link delays fit inside the pipelined clock period?
  bool link_timing_met = false;
};

TechnologyResult run_full_flow(tech::TechnologyKind kind, const FlowOptions& opts = {});

/// The 2D monolithic reference row of Table IV: the same two tiles as one
/// die, no SerDes, no AIB drivers, no interposer.
struct MonolithicResult {
  long cells = 0;
  double wirelength_m = 0;
  double total_power_w = 0;
  double footprint_mm = 1.6;  ///< Table IV: 1.6 x 1.6 mm
  double area_mm2() const { return footprint_mm * footprint_mm; }
};
MonolithicResult run_monolithic_reference(const FlowOptions& opts = {});

}  // namespace gia::core
