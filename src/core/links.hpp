#pragma once

#include "interposer/design.hpp"
#include "signal/link_sim.hpp"

/// \file links.hpp
/// Channel (LinkSpec) construction for each technology and connection type
/// -- the glue between the routed interposer design and the circuit-level
/// delay/power/eye studies of Tables V, VI and Fig 14.
///
/// Channel structure per technology (Section VII):
///  * lateral 2.5D: AIB TX -> ubump -> routed RDL line (worst net, coupled
///    with two aggressors) -> ubump -> AIB RX;
///  * Glass 3D L2M: TX -> stacked RDL vias straight down to the embedded
///    die (no lateral routing);
///  * Silicon 3D L2M: TX -> micro-bump -> RX (face-to-face);
///  * Silicon 3D L2L: TX -> two cascaded mini-TSVs (back-to-back, Fig 13)
///    plus the intervening micro-bump.

namespace gia::core {

/// Build the worst-case link of `kind` for a designed interposer.
signal::LinkSpec make_link_spec(const interposer::InterposerDesign& design,
                                interposer::TopNetKind kind);

/// Table VI's controlled experiment: a fixed 400 um line plus a pair of
/// built-up vias on the given technology.
signal::LinkSpec make_fixed_line_spec(const tech::Technology& tech, double length_um = 400.0);

}  // namespace gia::core
