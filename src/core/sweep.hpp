#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

/// \file sweep.hpp
/// Light design-space-exploration helpers: run a metric-producing evaluation
/// over labeled design points, tabulate, and extract the Pareto-efficient
/// subset. Used by the comparison/ablation studies to answer the paper's
/// implicit question -- "which integration technology should I pick?" --
/// under multiple objectives (power, cost, thermal, SI) at once.

namespace gia::core {

/// One evaluated design point: a label plus named metric values.
struct DesignPoint {
  std::string label;
  std::map<std::string, double> metrics;

  double metric(const std::string& name) const;
  bool has(const std::string& name) const { return metrics.count(name) > 0; }
};

/// Objective direction for Pareto dominance.
enum class Direction { Minimize, Maximize };

struct Objective {
  std::string metric;
  Direction direction = Direction::Minimize;
};

/// True when `a` dominates `b`: no worse on every objective, strictly
/// better on at least one. Points missing an objective metric never
/// dominate and are never dominated on that axis.
bool dominates(const DesignPoint& a, const DesignPoint& b,
               const std::vector<Objective>& objectives);

/// The non-dominated subset, preserving input order.
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points,
                                      const std::vector<Objective>& objectives);

/// Evaluate a 1-D parameter sweep: calls `eval(value)` per value and labels
/// the points "<name>=<value>".
std::vector<DesignPoint> sweep_1d(const std::string& name, const std::vector<double>& values,
                                  const std::function<std::map<std::string, double>(double)>& eval);

}  // namespace gia::core
