#pragma once

#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

/// \file sweep.hpp
/// Light design-space-exploration helpers: run a metric-producing evaluation
/// over labeled design points, tabulate, and extract the Pareto-efficient
/// subset. Used by the comparison/ablation studies to answer the paper's
/// implicit question -- "which integration technology should I pick?" --
/// under multiple objectives (power, cost, thermal, SI) at once.

namespace gia::core {

/// Flat sorted map of metric name -> value. Design points carry a handful
/// of metrics, where a sorted vector beats a node-based std::map on both
/// allocation count and lookup locality in large sweeps.
class MetricMap {
 public:
  using value_type = std::pair<std::string, double>;
  using const_iterator = std::vector<value_type>::const_iterator;

  MetricMap() = default;
  MetricMap(std::initializer_list<value_type> init) {
    entries_.reserve(init.size());
    for (const auto& kv : init) set(kv.first, kv.second);
  }
  MetricMap(const std::map<std::string, double>& m) : entries_(m.begin(), m.end()) {}

  /// Insert or overwrite.
  void set(const std::string& name, double value);
  /// Pointer to the value, or nullptr when absent.
  const double* find(const std::string& name) const;
  bool contains(const std::string& name) const { return find(name) != nullptr; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void reserve(std::size_t n) { entries_.reserve(n); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  std::vector<value_type> entries_;  ///< sorted by name
};

/// One evaluated design point: a label plus named metric values.
struct DesignPoint {
  std::string label;
  MetricMap metrics;

  double metric(const std::string& name) const;
  bool has(const std::string& name) const { return metrics.contains(name); }
};

/// Objective direction for Pareto dominance.
enum class Direction { Minimize, Maximize };

struct Objective {
  std::string metric;
  Direction direction = Direction::Minimize;
};

/// True when `a` dominates `b`: no worse on every objective, strictly
/// better on at least one. Points missing an objective metric never
/// dominate and are never dominated on that axis.
bool dominates(const DesignPoint& a, const DesignPoint& b,
               const std::vector<Objective>& objectives);

/// The non-dominated subset, preserving input order.
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points,
                                      const std::vector<Objective>& objectives);

/// Evaluate a 1-D parameter sweep: calls `eval(value)` per value and labels
/// the points "<name>=<value>". Design points are evaluated in parallel
/// (see core/parallel.hpp) with output order preserved, so `eval` must be
/// safe to call concurrently.
std::vector<DesignPoint> sweep_1d(const std::string& name, const std::vector<double>& values,
                                  const std::function<MetricMap(double)>& eval);

}  // namespace gia::core
