#pragma once

#include <string>

#include "geometry/grid.hpp"
#include "interposer/design.hpp"

/// \file svg_export.hpp
/// Layout visualization: render a designed interposer (die outlines, bump
/// fields, routed RDL nets colored by metal layer) or a scalar field map
/// (IR drop, temperature) to SVG -- the open-source stand-in for the GDS
/// screenshots of Figs 9, 10 and 12.

namespace gia::core {

struct SvgOptions {
  double scale = 0.25;     ///< SVG pixels per um
  bool draw_bumps = true;
  bool draw_routes = true;
  int max_routes = 2000;   ///< cap for very dense designs
};

/// Render the interposer layout. Returns the SVG text.
std::string floorplan_svg(const interposer::InterposerDesign& design,
                          const SvgOptions& opts = {});

/// Render a scalar grid (e.g. temperature or rail voltage) as a heat map
/// over the given physical extent.
std::string heatmap_svg(const geometry::Grid<double>& values, double width_um, double height_um,
                        const std::string& title, const SvgOptions& opts = {});

/// Write any string to a file (throws on failure).
void write_file(const std::string& path, const std::string& content);

}  // namespace gia::core
