#include "core/sweep.hpp"

#include <sstream>
#include <stdexcept>

namespace gia::core {

double DesignPoint::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) throw std::out_of_range("no metric " + name + " on " + label);
  return it->second;
}

bool dominates(const DesignPoint& a, const DesignPoint& b,
               const std::vector<Objective>& objectives) {
  if (objectives.empty()) throw std::invalid_argument("need at least one objective");
  bool strictly_better = false;
  for (const auto& obj : objectives) {
    if (!a.has(obj.metric) || !b.has(obj.metric)) return false;
    const double va = a.metric(obj.metric);
    const double vb = b.metric(obj.metric);
    const double better = obj.direction == Direction::Minimize ? vb - va : va - vb;
    if (better < 0) return false;  // a worse on this axis
    if (better > 0) strictly_better = true;
  }
  return strictly_better;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points,
                                      const std::vector<Objective>& objectives) {
  std::vector<DesignPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (&other == &candidate) continue;
      if (dominates(other, candidate, objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

std::vector<DesignPoint> sweep_1d(
    const std::string& name, const std::vector<double>& values,
    const std::function<std::map<std::string, double>(double)>& eval) {
  std::vector<DesignPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    std::ostringstream label;
    label << name << "=" << v;
    out.push_back({label.str(), eval(v)});
  }
  return out;
}

}  // namespace gia::core
