#include "core/sweep.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/instrument.hpp"
#include "core/parallel.hpp"

namespace gia::core {

namespace {

auto lower_bound_of(const std::vector<MetricMap::value_type>& entries, const std::string& name) {
  return std::lower_bound(entries.begin(), entries.end(), name,
                          [](const MetricMap::value_type& kv, const std::string& n) {
                            return kv.first < n;
                          });
}

}  // namespace

void MetricMap::set(const std::string& name, double value) {
  auto it = lower_bound_of(entries_, name);
  if (it != entries_.end() && it->first == name) {
    const auto idx = it - entries_.begin();
    entries_[static_cast<std::size_t>(idx)].second = value;
    return;
  }
  entries_.insert(it, {name, value});
}

const double* MetricMap::find(const std::string& name) const {
  const auto it = lower_bound_of(entries_, name);
  if (it == entries_.end() || it->first != name) return nullptr;
  return &it->second;
}

double DesignPoint::metric(const std::string& name) const {
  const double* v = metrics.find(name);
  if (v == nullptr) throw std::out_of_range("no metric " + name + " on " + label);
  return *v;
}

bool dominates(const DesignPoint& a, const DesignPoint& b,
               const std::vector<Objective>& objectives) {
  if (objectives.empty()) throw std::invalid_argument("need at least one objective");
  bool strictly_better = false;
  for (const auto& obj : objectives) {
    const double* va = a.metrics.find(obj.metric);
    const double* vb = b.metrics.find(obj.metric);
    if (va == nullptr || vb == nullptr) return false;
    const double better = obj.direction == Direction::Minimize ? *vb - *va : *va - *vb;
    if (better < 0) return false;  // a worse on this axis
    if (better > 0) strictly_better = true;
  }
  return strictly_better;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points,
                                      const std::vector<Objective>& objectives) {
  std::vector<DesignPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (&other == &candidate) continue;
      if (dominates(other, candidate, objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

std::vector<DesignPoint> sweep_1d(const std::string& name, const std::vector<double>& values,
                                  const std::function<MetricMap(double)>& eval) {
  GIA_SPAN("core/sweep_1d");
  instrument::counter_add(instrument::Counter::SweepPoints, values.size());
  std::vector<DesignPoint> out(values.size());
  // Design points evaluate in parallel; each index fills only its own slot,
  // so the output is ordered and byte-identical at any thread count.
  parallel_for(values.size(), [&](std::size_t i) {
    std::ostringstream label;
    label << name << "=" << values[i];
    out[i] = {label.str(), eval(values[i])};
  });
  return out;
}

}  // namespace gia::core
