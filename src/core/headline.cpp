#include "core/headline.hpp"

#include <stdexcept>

#include "core/instrument.hpp"

namespace gia::core {

HeadlineMetrics compute_headlines(const TechnologyResult& glass3d,
                                  const TechnologyResult& glass25d,
                                  const TechnologyResult& si25d,
                                  const TechnologyResult& organic) {
  GIA_SPAN("flow/headlines");
  HeadlineMetrics h;
  h.area_reduction_x = glass25d.interposer.area_mm2() / glass3d.interposer.area_mm2();
  h.wirelength_reduction_x =
      si25d.interposer.routes.stats.total_wl_um / glass3d.interposer.routes.stats.total_wl_um;
  h.power_reduction_pct =
      100.0 * (glass25d.total_power_w - glass3d.total_power_w) / glass25d.total_power_w;
  if (glass3d.l2m.eye && si25d.l2m.eye) {
    const double closure_g3 = glass3d.l2m.eye->ui_s - glass3d.l2m.eye->width_s;
    const double closure_si = si25d.l2m.eye->ui_s - si25d.l2m.eye->width_s;
    h.si_improvement_pct =
        closure_si > 0 ? 100.0 * (closure_si - closure_g3) / closure_si : 0.0;
  }
  h.pi_improvement_x = organic.pdn_impedance.high_band() / glass3d.pdn_impedance.high_band();
  if (glass3d.thermal && si25d.thermal) {
    const double amb = glass3d.thermal->ambient_c;
    const double g3 = glass3d.thermal->hotspot("tile0/mem");
    const double si = si25d.thermal->hotspot("tile0/mem");
    h.thermal_increase_pct = 100.0 * (g3 - si) / si;
    (void)amb;
  }
  return h;
}

}  // namespace gia::core
