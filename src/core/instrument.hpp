#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file instrument.hpp
/// Dependency-free observability layer: RAII scoped timers aggregating into
/// a thread-safe registry of named spans (count / total / min / max ns with
/// parent links forming a call tree), monotonic counters for solver
/// internals, named gauges, and a `RunReport` snapshot that serialises the
/// registry plus build/thread metadata to JSON or a compact text tree.
///
/// The whole layer is gated by the `GIA_TRACE` environment variable (unset,
/// empty or "0" = off; anything else = on; the value "text" additionally
/// selects the text tree for `emit_report`). When tracing is off every entry
/// point is a single relaxed atomic load followed by an early return, so
/// instrumented hot paths keep their pre-instrumentation behaviour and
/// stdout byte-for-byte.
///
/// Span nesting is tracked per thread. The parallel layer
/// (`core/parallel.cpp`) propagates the submitting thread's open span to
/// pool workers via `current_context()` / `ContextScope`, so spans opened
/// inside `parallel_for` bodies aggregate under the caller's span at any
/// thread count instead of dangling from the root.

namespace gia::core::instrument {

/// Is tracing on? First call reads `GIA_TRACE`; `set_enabled` overrides.
bool enabled() noexcept;

/// Force tracing on/off (tests and embedders; overrides the environment).
void set_enabled(bool on) noexcept;

/// Clear all spans, counters and gauges. Must not be called while any span
/// is still open (including on pool workers mid-`parallel_for`).
void reset();

/// Monotonic solver-internal counters. Fixed enum rather than open-ended
/// strings so `counter_add` is a branch + one relaxed fetch_add.
enum class Counter : int {
  SorIterations = 0,      ///< thermal steady-state SOR iterations to convergence
  ThermalTransientSteps,  ///< explicit transient thermal time steps
  LuFactorizations,       ///< dense LU factorisations (real + complex)
  LuSolves,               ///< dense LU triangular solves
  TransientSteps,         ///< MNA transient time steps accepted
  TransientStepRejections,///< reserved: step rejections (always 0 for the
                          ///  fixed-step linear solver; kept for adaptive /
                          ///  Newton extensions)
  AcPoints,               ///< AC analysis frequency points solved
  McTrials,               ///< Monte Carlo variation trials
  PrbsSegments,           ///< PRBS eye-ensemble segments simulated
  EyeUis,                 ///< unit intervals sampled by the eye fold
  SweepPoints,            ///< design points evaluated by sweep_1d
  FlowRuns,               ///< full co-design flow invocations
  ServeRequests,          ///< flow requests handled by the serving layer
  CacheHits,              ///< serving-cache lookups answered from memory/disk
  CacheMisses,            ///< serving-cache lookups that required a flow run
  CacheCoalesced,         ///< duplicate in-flight requests attached to one run
  StageRuns,              ///< flow stage bodies executed (stage-cache misses run)
  StageCacheHits,         ///< stage artifacts served from the stage cache
  StageCacheMisses,       ///< stage lookups that had to run the stage body
  KrylovIterations,       ///< CG/BiCGSTAB iterations across all sparse solves
  MgVcycles,              ///< thermal geometric-multigrid V-cycles
  DsePointsEvaluated,     ///< design points evaluated by dse:: searches
  DseFrontUpdates,        ///< Pareto-front versions published by dse:: searches
  DseCacheAssistedPoints, ///< dse points served with result-cache / coalesce /
                          ///  resident-stage-artifact help
  FleetForwards,          ///< requests a coordinator forwarded to fleet workers
  FleetHedges,            ///< hedged re-issues to a secondary replica
  FleetShed,              ///< requests shed with a structured "overloaded" error
  FleetWorkerFailures,    ///< forward attempts that failed against a worker
  kCount
};

/// Stable snake_case name used in reports ("sor_iterations", ...).
const char* counter_name(Counter c) noexcept;

void counter_add(Counter c, std::uint64_t n = 1) noexcept;
std::uint64_t counter_value(Counter c) noexcept;

/// Set (or overwrite) a named gauge. No-op when tracing is disabled.
void gauge_set(const std::string& name, double value);

/// RAII scoped timer. On construction (when enabled) finds or creates the
/// span named `name` under the calling thread's innermost open span and
/// makes it current; on destruction folds the elapsed time into the span's
/// aggregate stats. `name` must outlive the program (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void* node_ = nullptr;  ///< SpanNode*, null when tracing is disabled
  void* prev_ = nullptr;  ///< thread's previous current span, restored on exit
  std::uint64_t t0_ns_ = 0;
};

#define GIA_SPAN_CONCAT2(a, b) a##b
#define GIA_SPAN_CONCAT(a, b) GIA_SPAN_CONCAT2(a, b)
/// Open a scoped span for the rest of the enclosing block.
#define GIA_SPAN(name) \
  ::gia::core::instrument::ScopedSpan GIA_SPAN_CONCAT(gia_span_, __LINE__)(name)

/// Opaque handle to the calling thread's innermost open span (null when
/// tracing is disabled or no span is open). Pass to `ContextScope` on
/// another thread to parent that thread's spans under it.
void* current_context() noexcept;

/// Adopt `ctx` (from `current_context()`) as the calling thread's current
/// span for the lifetime of the scope; restores the previous context on
/// destruction. Null `ctx` leaves the context untouched.
class ContextScope {
 public:
  explicit ContextScope(void* ctx) noexcept;
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  void* prev_ = nullptr;
};

/// Immutable snapshot of one span subtree.
struct SpanSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< 0 when count == 0
  std::uint64_t max_ns = 0;
  std::vector<SpanSnapshot> children;
};

/// Snapshot of the whole registry plus build/thread metadata. `capture()`
/// and `from_json(to_json())` produce equal reports (JSON round-trip).
struct RunReport {
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string build_type;  ///< CMake build type (or "unknown")
  int threads = 0;         ///< parallel layer worker target
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< all, in enum order
  std::vector<std::pair<std::string, double>> gauges;           ///< insertion order
  SpanSnapshot root;  ///< synthetic "root" node; real spans are its children

  static RunReport capture();
  /// Parse a report previously produced by `to_json`. Throws
  /// std::runtime_error on malformed input.
  static RunReport from_json(const std::string& json);
  /// Canonical single-line JSON (`{"run_report":{...}}`).
  std::string to_json() const;
  /// Human-readable indented call tree + counters + gauges.
  std::string to_text() const;
};

/// Serialise one span subtree as JSON (the `"spans"` value of `to_json`);
/// exposed so bench JSON lines can embed per-stage breakdowns.
std::string span_tree_json(const SpanSnapshot& s);

/// When tracing is enabled, capture a report and write it to the path in
/// `GIA_TRACE_FILE` (stdout when unset) -- JSON by default, the text tree
/// when `GIA_TRACE=text`. No-op when disabled.
void emit_report();

}  // namespace gia::core::instrument
