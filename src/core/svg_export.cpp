#include "core/svg_export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gia::core {

namespace {

const char* kLayerColors[] = {"#d62728", "#1f77b4", "#2ca02c", "#9467bd",
                              "#ff7f0e", "#8c564b", "#e377c2", "#17becf"};

std::string rect_tag(double x, double y, double w, double h, const std::string& fill,
                     const std::string& stroke, double opacity = 1.0,
                     const std::string& dash = "") {
  std::ostringstream os;
  os << "<rect x='" << x << "' y='" << y << "' width='" << w << "' height='" << h
     << "' fill='" << fill << "' stroke='" << stroke << "' fill-opacity='" << opacity << "'";
  if (!dash.empty()) os << " stroke-dasharray='" << dash << "'";
  os << "/>\n";
  return os.str();
}

}  // namespace

std::string floorplan_svg(const interposer::InterposerDesign& design, const SvgOptions& opts) {
  const auto& fp = design.floorplan;
  const double s = opts.scale;
  const double w = fp.outline.width() * s;
  const double h = fp.outline.height() * s;
  // SVG y grows downward; flip so layout coordinates read naturally.
  auto X = [&](double ux) { return (ux - fp.outline.lx) * s; };
  auto Y = [&](double uy) { return h - (uy - fp.outline.ly) * s; };

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w + 20 << "' height='" << h + 40
     << "' viewBox='-10 -30 " << w + 20 << " " << h + 40 << "'>\n";
  os << "<text x='0' y='-12' font-family='monospace' font-size='14'>"
     << design.technology.name << " -- " << design.footprint_w_mm() << " x "
     << design.footprint_h_mm() << " mm</text>\n";
  os << rect_tag(0, 0, w, h, "#f5f0e8", "#444");

  // Routed nets under the dies.
  if (opts.draw_routes) {
    int drawn = 0;
    for (const auto& rn : design.routes.nets) {
      if (rn.vertical || rn.path.empty()) continue;
      if (drawn++ >= opts.max_routes) break;
      const auto [lo, hi] = rn.path.layer_span();
      const char* color = kLayerColors[static_cast<std::size_t>(lo) % 8];
      os << "<polyline fill='none' stroke='" << color << "' stroke-width='0.8' points='";
      for (const auto& pp : rn.path.points()) {
        os << X(pp.p.x) << "," << Y(pp.p.y) << " ";
      }
      os << "'/>\n";
      (void)hi;
    }
  }

  // Dies (embedded ones dashed).
  for (const auto& die : fp.dies) {
    const bool logic = die.side == netlist::ChipletSide::Logic;
    os << rect_tag(X(die.outline.lx), Y(die.outline.uy), die.outline.width() * s,
                   die.outline.height() * s, logic ? "#aec7e8" : "#ffbb78", "#333",
                   die.embedded ? 0.35 : 0.55, die.embedded ? "4,3" : "");
    os << "<text x='" << X(die.outline.lx) + 4 << "' y='" << Y(die.outline.uy) + 14
       << "' font-family='monospace' font-size='11'>" << die.name
       << (die.embedded ? " (embedded)" : "") << "</text>\n";
  }

  // Bump fields.
  if (opts.draw_bumps) {
    for (const auto& die : fp.dies) {
      if (die.plan == nullptr) continue;
      for (std::size_t i = 0; i < die.plan->bump_sites.size(); ++i) {
        const auto p = die.bump_at(i);
        const bool is_signal = static_cast<int>(i) < die.plan->signal_bumps;
        os << "<circle cx='" << X(p.x) << "' cy='" << Y(p.y) << "' r='"
           << std::max(0.6, die.plan->width_um * s * 0.004) << "' fill='"
           << (is_signal ? "#555" : "#c33") << "'/>\n";
      }
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string heatmap_svg(const geometry::Grid<double>& values, double width_um, double height_um,
                        const std::string& title, const SvgOptions& opts) {
  const double s = opts.scale;
  const double w = width_um * s, h = height_um * s;
  double lo = 1e300, hi = -1e300;
  for (double v : values.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(hi - lo, 1e-12);

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h + 30
     << "' viewBox='0 -30 " << w << " " << h + 30 << "'>\n";
  os << "<text x='0' y='-12' font-family='monospace' font-size='14'>" << title << " ["
     << lo << " .. " << hi << "]</text>\n";
  const double cw = w / values.nx(), ch = h / values.ny();
  for (int y = 0; y < values.ny(); ++y) {
    for (int x = 0; x < values.nx(); ++x) {
      const double f = (values.at(x, y) - lo) / span;
      // Blue (cold) -> red (hot).
      const int r = static_cast<int>(40 + 215 * f);
      const int b = static_cast<int>(255 - 215 * f);
      os << "<rect x='" << x * cw << "' y='" << h - (y + 1) * ch << "' width='" << cw + 0.5
         << "' height='" << ch + 0.5 << "' fill='rgb(" << r << ",60," << b << ")'/>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  f << content;
  if (!f.good()) throw std::runtime_error("write failed: " + path);
}

}  // namespace gia::core
