#include "partition/fm.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <stdexcept>
#include <vector>

#include "partition/metrics.hpp"

namespace gia::partition {
namespace {

using netlist::ChipletSide;

/// Gain of moving instance v to the other side, computed from scratch.
/// Classic FM uses incremental gain buckets; netlists here are a few
/// thousand clusters, so a simple recompute with per-net side counts is
/// fast enough and much easier to verify.
struct NetSideCount {
  int logic = 0;
  int memory = 0;
};

int gain_of(const netlist::Netlist& nl, const std::vector<std::vector<int>>& nets_of,
            const std::vector<NetSideCount>& count, const Assignment& side, int v) {
  int gain = 0;
  const ChipletSide from = side[static_cast<std::size_t>(v)];
  for (int n : nets_of[static_cast<std::size_t>(v)]) {
    const auto& nsc = count[static_cast<std::size_t>(n)];
    const int bits = nl.net(n).bits;
    const int from_cnt = (from == ChipletSide::Logic) ? nsc.logic : nsc.memory;
    const int to_cnt = (from == ChipletSide::Logic) ? nsc.memory : nsc.logic;
    if (from_cnt == 1) gain += bits;  // net becomes uncut
    if (to_cnt == 0) gain -= bits;    // net becomes cut
  }
  return gain;
}

}  // namespace

PartitionResult fm_partition(const netlist::Netlist& nl, const FmConfig& cfg,
                             const Assignment& initial) {
  const int n_inst = nl.instance_count();
  Assignment side = initial;
  if (side.empty()) {
    side.reserve(static_cast<std::size_t>(n_inst));
    for (int i = 0; i < n_inst; ++i) side.push_back(netlist::default_side(nl.instance(i).cls));
  }
  if (static_cast<int>(side.size()) != n_inst) throw std::invalid_argument("initial size mismatch");

  // Adjacency: nets touching each instance.
  std::vector<std::vector<int>> nets_of(static_cast<std::size_t>(n_inst));
  for (int n = 0; n < nl.net_count(); ++n) {
    for (int t : nl.net(n).terminals) nets_of[static_cast<std::size_t>(t)].push_back(n);
  }

  // Balance is enforced PER TILE: chiplets are one-per-tile, so a "balanced"
  // global split that dumps an entire tile on one side is useless.
  int n_tiles = 1;
  for (int i = 0; i < n_inst; ++i) n_tiles = std::max(n_tiles, nl.instance(i).tile + 1);
  std::vector<long> tile_cells(static_cast<std::size_t>(n_tiles), 0);
  std::vector<long> mem_cells(static_cast<std::size_t>(n_tiles), 0);
  for (int i = 0; i < n_inst; ++i) {
    const auto t = static_cast<std::size_t>(nl.instance(i).tile);
    tile_cells[t] += nl.instance(i).cell_count;
    if (side[static_cast<std::size_t>(i)] == ChipletSide::Memory) {
      mem_cells[t] += nl.instance(i).cell_count;
    }
  }
  const double lo = cfg.target_memory_fraction - cfg.balance_tolerance;
  const double hi = cfg.target_memory_fraction + cfg.balance_tolerance;
  auto frac_of = [&](std::size_t t) {
    return static_cast<double>(mem_cells[t]) / static_cast<double>(std::max(1L, tile_cells[t]));
  };
  auto all_balanced = [&] {
    for (std::size_t t = 0; t < mem_cells.size(); ++t) {
      if (frac_of(t) < lo || frac_of(t) > hi) return false;
    }
    return true;
  };

  std::mt19937 rng(cfg.seed);
  std::vector<NetSideCount> count(static_cast<std::size_t>(nl.net_count()));
  auto rebuild_counts = [&] {
    for (int n = 0; n < nl.net_count(); ++n) {
      NetSideCount c;
      for (int t : nl.net(n).terminals) {
        (side[static_cast<std::size_t>(t)] == ChipletSide::Logic ? c.logic : c.memory)++;
      }
      count[static_cast<std::size_t>(n)] = c;
    }
  };

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    rebuild_counts();
    std::vector<bool> locked(static_cast<std::size_t>(n_inst), false);
    // Move sequence with prefix-best rollback (the FM pass structure).
    struct Move { int v; bool balanced_after; };
    std::vector<Move> moves;
    std::vector<int> cum_gain;
    int running = 0;
    const bool start_balanced = all_balanced();

    std::vector<int> order(static_cast<std::size_t>(n_inst));
    for (int i = 0; i < n_inst; ++i) order[static_cast<std::size_t>(i)] = i;
    std::shuffle(order.begin(), order.end(), rng);

    for (int step = 0; step < n_inst; ++step) {
      // Best unlocked, balance-legal move.
      int best_v = -1, best_gain = std::numeric_limits<int>::min();
      for (int v : order) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        const auto vt = static_cast<std::size_t>(nl.instance(v).tile);
        const long cells = nl.instance(v).cell_count;
        const bool to_memory = side[static_cast<std::size_t>(v)] == ChipletSide::Logic;
        const long new_mem = mem_cells[vt] + (to_memory ? cells : -cells);
        const double cur_frac = frac_of(vt);
        const double frac =
            static_cast<double>(new_mem) / static_cast<double>(std::max(1L, tile_cells[vt]));
        // Legal when inside the balance band, or when the start is outside
        // the band and the move makes progress toward the target (otherwise
        // an off-balance initial assignment deadlocks the pass).
        const bool in_band = frac >= lo && frac <= hi;
        const bool progress = std::abs(frac - cfg.target_memory_fraction) <
                              std::abs(cur_frac - cfg.target_memory_fraction);
        if (!in_band && !progress) continue;
        const int g = gain_of(nl, nets_of, count, side, v);
        if (g > best_gain) {
          best_gain = g;
          best_v = v;
        }
      }
      if (best_v < 0) break;

      // Apply the move.
      const ChipletSide from = side[static_cast<std::size_t>(best_v)];
      const ChipletSide to = (from == ChipletSide::Logic) ? ChipletSide::Memory : ChipletSide::Logic;
      side[static_cast<std::size_t>(best_v)] = to;
      const auto bt = static_cast<std::size_t>(nl.instance(best_v).tile);
      mem_cells[bt] += (to == ChipletSide::Memory) ? nl.instance(best_v).cell_count
                                                   : -nl.instance(best_v).cell_count;
      for (int n : nets_of[static_cast<std::size_t>(best_v)]) {
        auto& c = count[static_cast<std::size_t>(n)];
        if (from == ChipletSide::Logic) { --c.logic; ++c.memory; } else { --c.memory; ++c.logic; }
      }
      locked[static_cast<std::size_t>(best_v)] = true;
      running += best_gain;
      moves.push_back({best_v, all_balanced()});
      cum_gain.push_back(running);

      if (best_gain < 0 && moves.size() > 64) break;  // deep in a losing streak
    }

    // Roll back past the best prefix. When the pass started off-balance,
    // only prefixes that END balanced are acceptable stopping points --
    // otherwise the rollback would undo the re-balancing work.
    int best_prefix = 0;
    int best_val = std::numeric_limits<int>::min();
    bool found = false;
    for (std::size_t i = 0; i < cum_gain.size(); ++i) {
      if (!start_balanced && !moves[i].balanced_after) continue;
      if (cum_gain[i] > best_val) {
        best_val = cum_gain[i];
        best_prefix = static_cast<int>(i) + 1;
        found = true;
      }
    }
    if (start_balanced && (!found || best_val <= 0)) {
      best_prefix = 0;
      best_val = 0;
    }
    if (!start_balanced && !found) {
      // Could not reach balance this pass; keep everything and try again.
      best_prefix = static_cast<int>(moves.size());
      best_val = moves.empty() ? 0 : cum_gain.back();
    }
    for (std::size_t i = cum_gain.size(); i > static_cast<std::size_t>(best_prefix); --i) {
      const int v = moves[i - 1].v;
      const ChipletSide cur = side[static_cast<std::size_t>(v)];
      const ChipletSide back = (cur == ChipletSide::Logic) ? ChipletSide::Memory : ChipletSide::Logic;
      side[static_cast<std::size_t>(v)] = back;
      mem_cells[static_cast<std::size_t>(nl.instance(v).tile)] +=
          (back == ChipletSide::Memory) ? nl.instance(v).cell_count
                                        : -nl.instance(v).cell_count;
    }
    if (start_balanced && best_val <= 0) break;  // converged
  }

  PartitionResult out;
  out.side = std::move(side);
  out.cut_wires = cut_wires(nl, out.side);
  out.memory_fraction = memory_cell_fraction(nl, out.side);
  return out;
}

}  // namespace gia::partition
