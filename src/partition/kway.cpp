#include "partition/kway.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace gia::partition {
namespace {

/// Distinct parts touched by a net given its per-part terminal counts.
int distinct_parts(const std::vector<int>& cnt) {
  int d = 0;
  for (int c : cnt) d += c > 0;
  return d;
}

}  // namespace

long kway_cut_wires(const netlist::Netlist& nl, const std::vector<int>& part,
                    int parts) {
  long cut = 0;
  std::vector<int> cnt(static_cast<std::size_t>(parts));
  for (int n = 0; n < nl.net_count(); ++n) {
    std::fill(cnt.begin(), cnt.end(), 0);
    for (int t : nl.net(n).terminals) ++cnt[static_cast<std::size_t>(part[static_cast<std::size_t>(t)])];
    const int d = distinct_parts(cnt);
    if (d > 1) cut += static_cast<long>(nl.net(n).bits) * (d - 1);
  }
  return cut;
}

std::vector<PairCut> pair_cuts(const netlist::Netlist& nl,
                               const std::vector<int>& part, int parts) {
  // Dense upper-triangular accumulation: parts is <= 256, so the K^2 matrix
  // stays small.
  std::vector<int> wires(static_cast<std::size_t>(parts) * static_cast<std::size_t>(parts), 0);
  std::vector<int> touched;
  for (int n = 0; n < nl.net_count(); ++n) {
    touched.clear();
    for (int t : nl.net(n).terminals) touched.push_back(part[static_cast<std::size_t>(t)]);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    if (touched.size() < 2) continue;
    // A net spanning >2 parts books its bits on every touched pair: each pair
    // needs that bus's wires between them (a conservative star expansion).
    for (std::size_t i = 0; i < touched.size(); ++i) {
      for (std::size_t j = i + 1; j < touched.size(); ++j) {
        wires[static_cast<std::size_t>(touched[i]) * static_cast<std::size_t>(parts) +
              static_cast<std::size_t>(touched[j])] += nl.net(n).bits;
      }
    }
  }
  std::vector<PairCut> out;
  for (int a = 0; a < parts; ++a) {
    for (int b = a + 1; b < parts; ++b) {
      const int w = wires[static_cast<std::size_t>(a) * static_cast<std::size_t>(parts) +
                          static_cast<std::size_t>(b)];
      if (w > 0) out.push_back({a, b, w});
    }
  }
  return out;
}

KwayResult kway_partition(const netlist::Netlist& nl, const KwayConfig& cfg,
                          const std::vector<int>& initial) {
  if (cfg.parts < 1) throw std::invalid_argument("kway: parts must be >= 1");
  const int n_inst = nl.instance_count();
  const int k = cfg.parts;

  std::vector<int> part = initial;
  if (part.empty()) {
    part.reserve(static_cast<std::size_t>(n_inst));
    for (int i = 0; i < n_inst; ++i) part.push_back(nl.instance(i).tile % k);
  }
  if (static_cast<int>(part.size()) != n_inst) throw std::invalid_argument("kway: initial size mismatch");
  for (int p : part) {
    if (p < 0 || p >= k) throw std::invalid_argument("kway: initial part id out of range");
  }

  // Adjacency and per-net part counts (the K-way NetSideCount).
  std::vector<std::vector<int>> nets_of(static_cast<std::size_t>(n_inst));
  for (int n = 0; n < nl.net_count(); ++n) {
    for (int t : nl.net(n).terminals) nets_of[static_cast<std::size_t>(t)].push_back(n);
  }
  std::vector<std::vector<int>> count(static_cast<std::size_t>(nl.net_count()),
                                      std::vector<int>(static_cast<std::size_t>(k), 0));
  for (int n = 0; n < nl.net_count(); ++n) {
    for (int t : nl.net(n).terminals) {
      ++count[static_cast<std::size_t>(n)][static_cast<std::size_t>(part[static_cast<std::size_t>(t)])];
    }
  }

  // Balance: every part's cell count within +/- tolerance of the mean.
  std::vector<long> part_cells(static_cast<std::size_t>(k), 0);
  for (int i = 0; i < n_inst; ++i) {
    part_cells[static_cast<std::size_t>(part[static_cast<std::size_t>(i)])] += nl.instance(i).cell_count;
  }
  const double mean =
      static_cast<double>(nl.total_cells()) / static_cast<double>(std::max(1, k));
  const double lo = mean * (1.0 - cfg.balance_tolerance);
  const double hi = mean * (1.0 + cfg.balance_tolerance);
  auto dev = [&](long cells) { return std::abs(static_cast<double>(cells) - mean); };

  // FM-style refinement passes: seeded shuffle order, best balance-legal
  // target per instance, gain from per-net part counts. Moves apply
  // immediately and only when they do not increase the cut, so no prefix
  // rollback is needed; a pass with no moves ends refinement. K = 1 has no
  // legal moves and falls straight through.
  std::mt19937 rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n_inst));
  for (int i = 0; i < n_inst; ++i) order[static_cast<std::size_t>(i)] = i;
  std::vector<int> cand;

  for (int pass = 0; pass < cfg.max_passes && k > 1; ++pass) {
    std::shuffle(order.begin(), order.end(), rng);
    int moved = 0;
    for (int v : order) {
      const int from = part[static_cast<std::size_t>(v)];
      const long cells = nl.instance(v).cell_count;

      // Candidate targets: only parts v's nets already touch -- moving
      // anywhere else can never uncut a net.
      cand.clear();
      for (int n : nets_of[static_cast<std::size_t>(v)]) {
        const auto& cnt = count[static_cast<std::size_t>(n)];
        for (int q = 0; q < k; ++q) {
          if (q != from && cnt[static_cast<std::size_t>(q)] > 0) cand.push_back(q);
        }
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

      int best_q = -1;
      long best_gain = 0;
      double best_balance = 0;
      for (int q : cand) {
        const double from_after = static_cast<double>(part_cells[static_cast<std::size_t>(from)] - cells);
        const double to_after = static_cast<double>(part_cells[static_cast<std::size_t>(q)] + cells);
        const bool in_band = from_after >= lo && to_after <= hi;
        const double worst_before = std::max(dev(part_cells[static_cast<std::size_t>(from)]),
                                             dev(part_cells[static_cast<std::size_t>(q)]));
        const double worst_after =
            std::max(std::abs(from_after - mean), std::abs(to_after - mean));
        if (!in_band && worst_after >= worst_before) continue;

        long gain = 0;
        for (int n : nets_of[static_cast<std::size_t>(v)]) {
          const auto& cnt = count[static_cast<std::size_t>(n)];
          const int bits = nl.net(n).bits;
          if (cnt[static_cast<std::size_t>(from)] == 1) gain += bits;  // net leaves `from`
          if (cnt[static_cast<std::size_t>(q)] == 0) gain -= bits;     // net enters `q`
        }
        const double balance_gain = worst_before - worst_after;
        const bool better = gain > best_gain ||
                            (gain == best_gain && balance_gain > best_balance);
        if (better && (gain > 0 || (gain == 0 && balance_gain > 0))) {
          best_q = q;
          best_gain = gain;
          best_balance = balance_gain;
        }
      }
      if (best_q < 0) continue;

      part[static_cast<std::size_t>(v)] = best_q;
      part_cells[static_cast<std::size_t>(from)] -= cells;
      part_cells[static_cast<std::size_t>(best_q)] += cells;
      for (int n : nets_of[static_cast<std::size_t>(v)]) {
        auto& cnt = count[static_cast<std::size_t>(n)];
        --cnt[static_cast<std::size_t>(from)];
        ++cnt[static_cast<std::size_t>(best_q)];
      }
      ++moved;
    }
    if (moved == 0) break;
  }

  KwayResult out;
  out.part = std::move(part);
  out.cut_wires = kway_cut_wires(nl, out.part, k);
  out.part_cells = std::move(part_cells);
  double worst = 0;
  for (long c : out.part_cells) worst = std::max(worst, dev(c));
  out.max_imbalance = mean > 0 ? worst / mean : 0.0;
  return out;
}

}  // namespace gia::partition
