#pragma once

#include "partition/partition.hpp"

/// \file metrics.hpp
/// Cut-size and balance metrics for chiplet partitioning.

namespace gia::partition {

/// Scalar wires on nets whose terminals span both sides (within any tile;
/// inter-tile nets between same-side instances do not count as cut).
int cut_wires(const netlist::Netlist& nl, const Assignment& side);

/// Fraction of standard cells assigned to the memory side.
double memory_cell_fraction(const netlist::Netlist& nl, const Assignment& side);

}  // namespace gia::partition
