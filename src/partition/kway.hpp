#pragma once

#include <vector>

#include "netlist/netlist.hpp"

/// \file kway.hpp
/// K-way min-cut refinement for N-chiplet systems. Generalizes the 2-way
/// FM partitioner (fm.hpp) to K parts: the cut objective is the standard
/// connectivity metric sum over nets of bits * (lambda - 1), where lambda is
/// the number of distinct parts a net touches (it reduces to cut_wires at
/// K = 2), and refinement keeps FM's pass structure -- seeded shuffle order,
/// best balance-legal move per step, prefix-best rollback.

namespace gia::partition {

struct KwayConfig {
  int parts = 2;
  /// Max relative deviation of any part's cell count from the mean.
  double balance_tolerance = 0.10;
  int max_passes = 8;
  unsigned seed = 1;
};

struct KwayResult {
  /// Part id per instance (parallel to netlist.instances()).
  std::vector<int> part;
  /// Connectivity cut: sum over nets of bits * (parts touched - 1).
  long cut_wires = 0;
  /// Standard cells per part.
  std::vector<long> part_cells;
  /// max_p |cells_p - mean| / mean.
  double max_imbalance = 0;
};

/// Inter-chiplet wire demand between one pair of parts: every cut net that
/// touches both a and b contributes its bits.
struct PairCut {
  int a = 0;
  int b = 0;
  int wires = 0;
};

/// Partition the netlist into cfg.parts parts. `initial` (part id per
/// instance) seeds the refinement; when empty, instances start on
/// tile % parts (the natural assignment for a K-tile netlist). Serial and
/// deterministic for a given seed regardless of GIA_THREADS.
KwayResult kway_partition(const netlist::Netlist& nl, const KwayConfig& cfg,
                          const std::vector<int>& initial = {});

/// Connectivity cut of an arbitrary assignment (for comparisons/tests).
long kway_cut_wires(const netlist::Netlist& nl, const std::vector<int>& part,
                    int parts);

/// Pairwise inter-part wire demand, sorted by (a, b) with a < b. Only pairs
/// with nonzero demand appear.
std::vector<PairCut> pair_cuts(const netlist::Netlist& nl,
                               const std::vector<int>& part, int parts);

}  // namespace gia::partition
