#include "partition/hierarchical.hpp"

#include "partition/metrics.hpp"

namespace gia::partition {

PartitionResult hierarchical_partition(const netlist::Netlist& nl) {
  PartitionResult out;
  out.side.reserve(static_cast<std::size_t>(nl.instance_count()));
  for (int i = 0; i < nl.instance_count(); ++i) {
    out.side.push_back(netlist::default_side(nl.instance(i).cls));
  }
  out.cut_wires = cut_wires(nl, out.side);
  out.memory_fraction = memory_cell_fraction(nl, out.side);
  return out;
}

}  // namespace gia::partition
