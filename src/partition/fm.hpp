#pragma once

#include "partition/partition.hpp"

/// \file fm.hpp
/// Fiduccia-Mattheyses bipartitioning on the flattened cluster netlist --
/// the "flattening partitioning" branch of the paper's co-design flow
/// (Fig 4). Nets are weighted by bit width so the cut metric equals the
/// scalar wire count that must cross the chiplet boundary (and hence the
/// signal bump demand).

namespace gia::partition {

struct FmConfig {
  /// Maximum per-pass fraction of total cells the memory side may deviate
  /// from `target_memory_fraction`.
  double balance_tolerance = 0.06;
  /// Desired fraction of cells on the memory side. The paper's hierarchical
  /// split puts ~18% of cells in the memory chiplet.
  double target_memory_fraction = 0.18;
  int max_passes = 12;
  unsigned seed = 1;
};

/// Run FM starting from `initial` (or from the hierarchical assignment when
/// empty). Tiles are partitioned independently -- a cut never helps by
/// moving an instance across tiles, and chiplets are per-tile.
PartitionResult fm_partition(const netlist::Netlist& nl, const FmConfig& cfg = {},
                             const Assignment& initial = {});

}  // namespace gia::partition
