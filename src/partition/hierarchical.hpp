#pragma once

#include "partition/partition.hpp"

/// \file hierarchical.hpp
/// The paper's partitioning: aggregate the L3 cache and its interfacing
/// logic into the memory chiplet; everything else (core, FPU, CCX, L1, L2,
/// NoC router, SerDes, I/O drivers) is the logic chiplet (Fig 3a).

namespace gia::partition {

PartitionResult hierarchical_partition(const netlist::Netlist& nl);

}  // namespace gia::partition
