#pragma once

#include <vector>

#include "netlist/netlist.hpp"

/// \file partition.hpp
/// Chipletization (Fig 4): split each OpenPiton tile into a logic and a
/// memory chiplet. Two strategies, matching the paper's flow diagram:
///  * hierarchical partitioning (the branch the paper uses): modules keep
///    their identity; L3 + its interface logic become the memory chiplet;
///  * flattened min-cut (Fiduccia-Mattheyses) as the alternative branch,
///    used here to verify the hierarchical cut is near-minimal.

namespace gia::partition {

/// Side assignment for every instance in the netlist.
using Assignment = std::vector<netlist::ChipletSide>;

struct PartitionResult {
  Assignment side;
  /// Scalar wires crossing the logic/memory boundary within a tile.
  int cut_wires = 0;
  /// Cell balance: memory-side cells / total cells (per tile average).
  double memory_fraction = 0.0;
};

}  // namespace gia::partition
