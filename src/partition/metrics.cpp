#include "partition/metrics.hpp"

#include <stdexcept>

namespace gia::partition {

int cut_wires(const netlist::Netlist& nl, const Assignment& side) {
  if (static_cast<int>(side.size()) != nl.instance_count()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  int cut = 0;
  for (int n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(n);
    bool has_logic = false, has_mem = false;
    for (int t : net.terminals) {
      (side[static_cast<std::size_t>(t)] == netlist::ChipletSide::Logic ? has_logic : has_mem) = true;
    }
    if (has_logic && has_mem) cut += net.bits;
  }
  return cut;
}

double memory_cell_fraction(const netlist::Netlist& nl, const Assignment& side) {
  if (static_cast<int>(side.size()) != nl.instance_count()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  long mem = 0, total = 0;
  for (int i = 0; i < nl.instance_count(); ++i) {
    total += nl.instance(i).cell_count;
    if (side[static_cast<std::size_t>(i)] == netlist::ChipletSide::Memory) {
      mem += nl.instance(i).cell_count;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(mem) / static_cast<double>(total);
}

}  // namespace gia::partition
